"""User-facing handle on a baseline-package BDD function."""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Union

from repro.bdd.node import BDDEdge
from repro.core.exceptions import ForeignManagerError
from repro.core.operations import OP_AND, OP_OR, OP_XNOR, OP_XOR, op_from_name


class BDDFunction:
    """A Boolean function represented by a ROBDD edge (mirrors Function)."""

    __slots__ = ("manager", "node", "attr", "__weakref__")

    def __init__(self, manager, edge: BDDEdge) -> None:
        self.manager = manager
        self.node = edge[0]
        self.attr = edge[1]
        self.node.ref += 1

    def __del__(self) -> None:
        node = getattr(self, "node", None)
        if node is not None:
            node.ref -= 1

    @property
    def edge(self) -> BDDEdge:
        return (self.node, self.attr)

    def __eq__(self, other) -> bool:
        if not isinstance(other, BDDFunction):
            return NotImplemented
        return (
            self.manager is other.manager
            and self.node is other.node
            and self.attr == other.attr
        )

    def __hash__(self) -> int:
        return hash((id(self.manager), self.node.uid, self.attr))

    def _wrap(self, edge: BDDEdge) -> "BDDFunction":
        return BDDFunction(self.manager, edge)

    def _coerce(self, other) -> BDDEdge:
        if isinstance(other, BDDFunction):
            if other.manager is not self.manager:
                raise ForeignManagerError(
                    "cannot combine functions from different managers"
                )
            return other.edge
        if other is True or other == 1:
            return self.manager.true_edge
        if other is False or other == 0:
            return self.manager.false_edge
        raise TypeError(f"cannot combine BDDFunction with {type(other).__name__}")

    def apply(self, other, op: Union[int, str]) -> "BDDFunction":
        if isinstance(op, str):
            op = op_from_name(op)
        return self._wrap(self.manager.apply_edges(self.edge, self._coerce(other), op))

    def __and__(self, other) -> "BDDFunction":
        return self.apply(other, OP_AND)

    __rand__ = __and__

    def __or__(self, other) -> "BDDFunction":
        return self.apply(other, OP_OR)

    __ror__ = __or__

    def __xor__(self, other) -> "BDDFunction":
        return self.apply(other, OP_XOR)

    __rxor__ = __xor__

    def __invert__(self) -> "BDDFunction":
        return self._wrap((self.node, not self.attr))

    def xnor(self, other) -> "BDDFunction":
        return self.apply(other, OP_XNOR)

    def ite(self, g, h) -> "BDDFunction":
        return self._wrap(
            self.manager.ite_edges(self.edge, self._coerce(g), self._coerce(h))
        )

    @property
    def is_true(self) -> bool:
        return self.node.is_sink and not self.attr

    @property
    def is_false(self) -> bool:
        return self.node.is_sink and self.attr

    @property
    def is_constant(self) -> bool:
        return self.node.is_sink

    def evaluate(self, assignment: Mapping) -> bool:
        values: Dict[int, bool] = {v: False for v in range(self.manager.num_vars)}
        for key, bit in assignment.items():
            values[self.manager.var_index(key)] = bool(bit)
        return self.manager.evaluate(self.edge, values)

    def __call__(self, **kwargs) -> bool:
        return self.evaluate(kwargs)

    def sat_count(self) -> int:
        return self.manager.sat_count(self.edge)

    def node_count(self) -> int:
        return self.manager.count_nodes([self.edge])

    def truth_mask(self, variables: Iterable) -> int:
        indices = [self.manager.var_index(v) for v in variables]
        mask = 0
        values: Dict[int, bool] = {v: False for v in range(self.manager.num_vars)}
        for i in range(1 << len(indices)):
            for j, var in enumerate(indices):
                values[var] = bool((i >> j) & 1)
            if self.manager.evaluate(self.edge, values):
                mask |= 1 << i
        return mask

    def __repr__(self) -> str:
        if self.is_true:
            return "<BDDFunction TRUE>"
        if self.is_false:
            return "<BDDFunction FALSE>"
        return f"<BDDFunction root=v{self.node.var}{'~' if self.attr else ''}>"


def _install_manager_helpers() -> None:
    from repro.bdd.manager import BDDManager

    def var(self, name_or_index) -> BDDFunction:
        return BDDFunction(self, self.literal_edge(name_or_index))

    def nvar(self, name_or_index) -> BDDFunction:
        return BDDFunction(self, self.literal_edge(name_or_index, positive=False))

    def variables(self) -> list:
        return [BDDFunction(self, self.literal_edge(i)) for i in range(self.num_vars)]

    def true(self) -> BDDFunction:
        return BDDFunction(self, self.true_edge)

    def false(self) -> BDDFunction:
        return BDDFunction(self, self.false_edge)

    def function(self, edge) -> BDDFunction:
        return BDDFunction(self, edge)

    def node_count(self, functions) -> int:
        edges = [f.edge if isinstance(f, BDDFunction) else f for f in functions]
        return self.count_nodes(edges)

    BDDManager.var = var
    BDDManager.nvar = nvar
    BDDManager.variables = variables
    BDDManager.true = true
    BDDManager.false = false
    BDDManager.function = function
    BDDManager.node_count = node_count


_install_manager_helpers()
