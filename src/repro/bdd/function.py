"""User-facing handle on a baseline-package BDD function.

:class:`BDDFunction` is the ROBDD instantiation of the shared
:class:`repro.api.base.FunctionBase` wrapper — the entire manipulation
API (operators, ``ite``, ``restrict``, ``compose``, ``exists``/
``forall``, ``sat_one``, ``let``, ``to_expr``, ``dump``) comes from the
base against the :class:`~repro.api.base.DDManager` edge protocol, so
the two backends expose an identical surface.
"""

from __future__ import annotations

from repro.api.base import FunctionBase, install_function_helpers


class BDDFunction(FunctionBase):
    """A Boolean function represented by a ROBDD edge (mirrors Function)."""

    __slots__ = ()

    def __repr__(self) -> str:
        if self.is_true:
            return "<BDDFunction TRUE>"
        if self.is_false:
            return "<BDDFunction FALSE>"
        return f"<BDDFunction root=v{self.node.var}{'~' if self.attr else ''}>"


def _install_manager_helpers() -> None:
    """Install the shared conveniences (here to avoid an import cycle)."""
    from repro.bdd.manager import BDDManager

    install_function_helpers(BDDManager, BDDFunction)


_install_manager_helpers()
