"""ROBDD node primitives for the baseline package.

A node is labelled by a single variable and denotes the Shannon expansion
``f = v t + v' e``.  Complement attributes live on else-edges and external
edges; then-edges of stored nodes are always regular (the CUDD
normalization, which makes the representation canonical with a single
1-sink).
"""

from __future__ import annotations

from typing import Optional, Tuple

#: Sentinel variable index identifying the sink node.
SINK_VAR = -2


class BDDNode:
    """A single ROBDD node (mutable only through the manager).

    ``bot`` supports chain-reduced parity spans (CBDD-style, following
    Bryant's chain reduction): a node with ``bot != var`` denotes
    ``f = (x_var XOR x_sv XOR ... XOR x_bot) XNOR then`` over the
    *contiguous* run of order positions from ``var`` down to ``bot``
    inclusive, stored with ``else_ is then`` and ``else_attr`` set (the
    parity shape).  Plain Shannon nodes have ``bot == var``.
    """

    __slots__ = (
        "var",
        "bot",
        "then",
        "else_",
        "else_attr",
        "ref",
        "uid",
        "__weakref__",
    )

    def __init__(
        self,
        var: int,
        then: Optional["BDDNode"],
        else_: Optional["BDDNode"],
        else_attr: bool,
        uid: int,
        bot: Optional[int] = None,
    ) -> None:
        self.var = var
        self.bot = var if bot is None else bot
        self.then = then
        self.else_ = else_
        self.else_attr = else_attr
        self.ref = 0
        self.uid = uid

    @property
    def is_sink(self) -> bool:
        return self.var == SINK_VAR

    @property
    def is_span(self) -> bool:
        return self.bot != self.var

    def key(self) -> tuple:
        return (self.var, self.bot, self.then.uid, self.else_.uid, self.else_attr)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.is_sink:
            return "<bdd-sink-1>"
        span = f":{self.bot}" if self.bot != self.var else ""
        return (
            f"<bdd v{self.var}{span} uid={self.uid} ref={self.ref} "
            f"t={self.then.uid} e={self.else_.uid}{'~' if self.else_attr else ''}>"
        )


#: An edge is ``(node, complement_attr)``.
BDDEdge = Tuple[BDDNode, bool]


def make_bdd_sink(uid: int = 0) -> BDDNode:
    node = BDDNode(SINK_VAR, None, None, False, uid)
    node.ref = 1  # immortal
    return node
