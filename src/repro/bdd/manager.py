"""The baseline BDD manager (CUDD-substitute).

Implements the classic apply over Shannon expansions with a computed
table, complement-edge normalization (then-edges regular), a
strong-canonical unique table and reference-counting garbage collection —
the same machinery CUDD uses, so that Table I compares the
*representations* (BBDD vs. BDD) rather than implementation substrates.
Like the BBDD core, the apply engine iterates over an explicit
pending-frame stack, so operand depth never touches the Python recursion
limit.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.api.base import DDManager
from repro.bdd.node import BDDEdge, BDDNode, make_bdd_sink
from repro.core.computed_table import make_computed_table
from repro.core.exceptions import VariableError
from repro.core.operations import (
    OP_AND,
    OP_OR,
    OP_XOR,
    UNARY_FALSE,
    UNARY_ID,
    UNARY_TRUE,
    diagonal,
    flip_a,
    flip_b,
    is_commutative,
    op_from_name,
    restrict_a,
    restrict_b,
)
from repro.core.order import ChainVariableOrder
from repro.core.unique_table import make_unique_table

#: Pending-frame tags of the iterative apply engine.
_CALL = 0
_COMBINE = 1


class BDDManager(DDManager):
    """Shared manager for a forest of ROBDDs (mirrors BBDDManager's API)."""

    #: Registry name of this backend in the repro.api front end.
    backend = "bdd"

    def __init__(
        self,
        variables: Union[int, Sequence[str]],
        unique_backend: str = "dict",
        computed_backend: str = "dict",
        chain_reduce: bool = False,
    ) -> None:
        if isinstance(variables, int):
            names = [f"x{i}" for i in range(variables)]
        else:
            names = list(variables)
        if len(set(names)) != len(names):
            raise VariableError("variable names must be distinct")
        #: Chain reduction (CBDD): merge adjacent parity-shaped nodes
        #: into multi-level spans.  Spans are order-relative, so sifting
        #: is unavailable while this is set.
        self.chain_reduce = bool(chain_reduce)
        self._names: List[str] = names
        self._index: Dict[str, int] = {n: i for i, n in enumerate(names)}
        self._order = ChainVariableOrder(range(len(names)))

        self._uid = 0
        self.sink = make_bdd_sink(self._next_uid())
        self._unique = make_unique_table(unique_backend)
        self._cache = make_computed_table(computed_backend)
        self._by_var: Dict[int, set] = {i: set() for i in range(len(names))}
        self._node_count = 0
        self.peak_nodes = 0
        self.gc_count = 0
        self.apply_calls = 0
        self.gc_reclaimed = 0

        from repro import obs  # late: avoids import cycles at package init

        self._trace_state = obs.trace.STATE
        obs.track(self)

    # ------------------------------------------------------------------
    # identifiers, variables, order
    # ------------------------------------------------------------------

    def _next_uid(self) -> int:
        self._uid += 1
        return self._uid

    @property
    def num_vars(self) -> int:
        return len(self._names)

    @property
    def var_names(self) -> tuple:
        return tuple(self._names)

    def var_index(self, var: Union[int, str]) -> int:
        if isinstance(var, str):
            try:
                return self._index[var]
            except KeyError:
                raise VariableError(f"unknown variable {var!r}") from None
        if not 0 <= var < len(self._names):
            raise VariableError(f"variable index {var} out of range")
        return var

    def var_name(self, index: int) -> str:
        return self._names[index]

    @property
    def order(self) -> ChainVariableOrder:
        return self._order

    def current_order(self) -> tuple:
        return tuple(self._names[v] for v in self._order.order)

    # ------------------------------------------------------------------
    # terminals and literals
    # ------------------------------------------------------------------

    @property
    def true_edge(self) -> BDDEdge:
        return (self.sink, False)

    @property
    def false_edge(self) -> BDDEdge:
        return (self.sink, True)

    def literal_edge(self, var: Union[int, str], positive: bool = True) -> BDDEdge:
        index = self.var_index(var)
        edge = self._make(index, self.true_edge, self.false_edge)
        if not positive:
            edge = (edge[0], not edge[1])
        return edge

    # ------------------------------------------------------------------
    # canonical node construction
    # ------------------------------------------------------------------

    def _make(self, var: int, t: BDDEdge, e: BDDEdge) -> BDDEdge:
        """Get-or-create node ``(var, then=t, else=e)`` in canonical form."""
        tn, ta = t
        en, ea = e
        if tn is en and ta == ea:
            return t
        attr = False
        if ta:
            # Then-edges are stored regular: complement both children and
            # return a complemented external edge.
            attr = True
            ta = False
            ea = not ea
        if tn is en and ea:
            # Parity shape (var, T, ~T) — the degenerate span <var:var>.
            # _make_span absorbs an adjacent parity child under chain
            # reduction (keeping spans maximal, hence canonical).
            node, sattr = self._make_span(var, var, (tn, False))
            return (node, sattr ^ attr)
        key = (var, var, tn.uid, en.uid, ea)
        node = self._unique.lookup(key)
        if node is None:
            node = BDDNode(var, tn, en, ea, self._next_uid())
            self._unique.insert(key, node)
            tn.ref += 1
            en.ref += 1
            self._by_var[var].add(node)
            self._node_count += 1
            if self._node_count > self.peak_nodes:
                self.peak_nodes = self._node_count
        return (node, attr)

    def _make_span(self, var: int, bot: int, t: BDDEdge) -> BDDEdge:
        """Get-or-create the parity span ``X(var..bot) XNOR t``.

        ``var``/``bot`` bound a contiguous run of order positions;
        ``bot == var`` is the plain single-level parity node.  Under
        chain reduction, a then-child that is itself parity-shaped at
        the position right below ``bot`` is absorbed (each absorption
        complements the function: ``a XNOR (b XNOR c) = ~((a XOR b)
        XNOR c)``), which keeps spans maximal — the canonicity
        invariant for chain-reduced BDDs.
        """
        tn, ta = t
        attr = ta
        if self.chain_reduce and not tn.is_sink:
            position = self._order.position
            if (
                tn.then is tn.else_
                and tn.else_attr
                and position(tn.var) == position(bot) + 1
            ):
                bot = tn.bot
                tn = tn.then
                attr = not attr
        key = (var, bot, tn.uid, tn.uid, True)
        node = self._unique.lookup(key)
        if node is None:
            node = BDDNode(var, tn, tn, True, self._next_uid(), bot=bot)
            self._unique.insert(key, node)
            tn.ref += 2
            self._by_var[var].add(node)
            self._node_count += 1
            if self._node_count > self.peak_nodes:
                self.peak_nodes = self._node_count
        return (node, attr)

    def _span_tail(self, node: BDDNode) -> BDDEdge:
        """The span's function once its top variable is factored out:
        ``tail = X(var+ .. bot) XNOR then`` (``var+`` the next order
        position); the span denotes ``x_var ? ~tail : tail``."""
        p = self._order.position(node.var)
        return self._make_span(
            self._order._order[p + 1], node.bot, (node.then, False)
        )

    def _shannon_cofactors(self, node: BDDNode):
        """``(then_edge, else_edge)`` of a node, peeling spans one level."""
        if node.bot != node.var:
            tn, ta = self._span_tail(node)
            return (tn, not ta), (tn, ta)
        return (node.then, False), (node.else_, node.else_attr)

    # ------------------------------------------------------------------
    # iterative apply (Shannon expansion)
    # ------------------------------------------------------------------

    def apply_edges(self, f: BDDEdge, g: BDDEdge, op: int) -> BDDEdge:
        fn, fa = f
        if fa:
            op = flip_a(op)
        gn, ga = g
        if ga:
            op = flip_b(op)
        self.apply_calls += 1
        if self._trace_state.enabled:
            from time import perf_counter

            from repro.obs import trace

            start = perf_counter()
            result = self._apply(fn, gn, op)
            trace.record("apply", perf_counter() - start, backend="bdd")
            return result
        return self._apply(fn, gn, op)

    def apply_named(self, f: BDDEdge, g: BDDEdge, name: str) -> BDDEdge:
        return self.apply_edges(f, g, op_from_name(name))

    def _unary(self, outcome: str, node: BDDNode) -> BDDEdge:
        if outcome == UNARY_FALSE:
            return (self.sink, True)
        if outcome == UNARY_TRUE:
            return (self.sink, False)
        if outcome == UNARY_ID:
            return (node, False)
        return (node, True)

    def _apply(self, fn: BDDNode, gn: BDDNode, op: int) -> BDDEdge:
        """Iterative apply over an explicit pending-frame stack.

        Frames are ``(_CALL, fn, gn, op)`` or ``(_COMBINE, var, key, 0)``;
        the then-branch frame is pushed last so it expands first, matching
        the recursive formulation's evaluation order.
        """
        position = self._order.position
        lookup = self._cache.lookup
        insert = self._cache.insert
        results: List[BDDEdge] = []
        rpush = results.append
        rpop = results.pop
        tasks: List[tuple] = [(_CALL, fn, gn, op)]
        tpush = tasks.append
        tpop = tasks.pop
        while tasks:
            tag, a, b, c = tpop()
            if tag == _COMBINE:
                e = rpop()
                t = rpop()
                result = self._make(a, t, e)
                insert(b, result)
                rpush(result)
                continue
            fn, gn, op = a, b, c
            if fn.is_sink:
                rpush(self._unary(restrict_a(op, 1), gn))
                continue
            if gn.is_sink:
                rpush(self._unary(restrict_b(op, 1), fn))
                continue
            if fn is gn:
                rpush(self._unary(diagonal(op), fn))
                continue
            if ((op >> 1) & 0b101) == (op & 0b101):
                rpush(self._unary(restrict_b(op, 0), fn))
                continue
            if ((op >> 2) & 0b11) == (op & 0b11):
                rpush(self._unary(restrict_a(op, 0), gn))
                continue

            if is_commutative(op) and gn.uid < fn.uid:
                fn, gn = gn, fn
            key = (fn.uid, gn.uid, op)
            cached = lookup(key)
            if cached is not None:
                rpush(cached)
                continue

            pf = position(fn.var)
            pg = position(gn.var)
            if pf <= pg:
                var = fn.var
                f_t, f_e = self._shannon_cofactors(fn)
            else:
                var = gn.var
                f_t = f_e = (fn, False)
            if pg <= pf:
                g_t, g_e = self._shannon_cofactors(gn)
            else:
                g_t = g_e = (gn, False)

            tpush((_COMBINE, var, key, 0))
            n1, a1 = f_e
            n2, a2 = g_e
            sub = op
            if a1:
                sub = flip_a(sub)
            if a2:
                sub = flip_b(sub)
            tpush((_CALL, n1, n2, sub))
            n1, a1 = f_t
            n2, a2 = g_t
            sub = op
            if a1:
                sub = flip_a(sub)
            if a2:
                sub = flip_b(sub)
            tpush((_CALL, n1, n2, sub))
        return results[-1]

    def and_edges(self, f: BDDEdge, g: BDDEdge) -> BDDEdge:
        return self.apply_edges(f, g, OP_AND)

    def or_edges(self, f: BDDEdge, g: BDDEdge) -> BDDEdge:
        return self.apply_edges(f, g, OP_OR)

    def xor_edges(self, f: BDDEdge, g: BDDEdge) -> BDDEdge:
        return self.apply_edges(f, g, OP_XOR)

    @staticmethod
    def not_edge(f: BDDEdge) -> BDDEdge:
        return (f[0], not f[1])

    def ite_edges(self, f: BDDEdge, g: BDDEdge, h: BDDEdge) -> BDDEdge:
        fg = self.and_edges(f, g)
        fh = self.and_edges((f[0], not f[1]), h)
        return self.or_edges(fg, fh)

    # ------------------------------------------------------------------
    # uniform DD protocol (repro.api) — derived ops and semantics
    # ------------------------------------------------------------------
    #
    # Full parity with the BBDD core: native iterative restrict /
    # compose / quantification live in :mod:`repro.bdd.ops`; the
    # wrappers below bind them (plus the semantics queries) to the
    # backend-agnostic :class:`repro.api.base.DDManager` edge protocol.

    def restrict_edge(self, edge: BDDEdge, var, value: bool) -> BDDEdge:
        from repro.bdd import ops as _ops

        return _ops.restrict(self, edge, var, value)

    def compose_edge(self, edge: BDDEdge, var, g: BDDEdge) -> BDDEdge:
        from repro.bdd import ops as _ops

        return _ops.compose(self, edge, var, g)

    def quantify_edge(self, edge: BDDEdge, variables, forall: bool = False) -> BDDEdge:
        from repro.bdd import ops as _ops

        if forall:
            return _ops.forall(self, edge, variables)
        return _ops.exists(self, edge, variables)

    def support_edge(self, edge: BDDEdge) -> frozenset:
        from repro.bdd import ops as _ops

        return _ops.support(self, edge)

    def and_exists_edges(self, f: BDDEdge, g: BDDEdge, variables) -> BDDEdge:
        from repro.bdd import ops as _ops

        return _ops.and_exists(self, f, g, variables)

    def evaluate_edge(self, edge: BDDEdge, values: Dict[int, bool]) -> bool:
        return self.evaluate(edge, values)

    def batch_stream(self, edge: BDDEdge):
        """Top-down level stream for the batch cohort sweeps (repro.serve)."""
        from repro.bdd import ops as _ops

        if edge[0].is_sink:
            return None
        return (edge[0], _ops.iter_cohort_items(self, edge))

    def freeze_export(self, named):
        """Flat int64 columns of a named forest (the shared-memory codec).

        Native override of :meth:`repro.api.base.DDManager.freeze_export`:
        one DFS over all roots collects the shared node set, and sorting
        by order position (then uid, for determinism) is a valid global
        top-down order for Shannon diagrams — children always sit at
        strictly later positions.
        """
        nodes = []
        seen = set()
        stack = []
        for _name, edge in named:
            node = edge[0]
            if not node.is_sink and node not in seen:
                seen.add(node)
                stack.append(node)
        while stack:
            node = stack.pop()
            nodes.append(node)
            for child in (node.then, node.else_):
                if not child.is_sink and child not in seen:
                    seen.add(child)
                    stack.append(child)
        order = self.order
        position = order.position
        nodes.sort(key=lambda n: (position(n.var), n.uid))
        ids = {node: 2 + i for i, node in enumerate(nodes)}
        pv = [0, 0]
        sv = [-1, -1]
        bot = [-1, -1]
        t = [0, 0]
        f = [0, 0]
        has_span = False
        for node in nodes:
            pv.append(node.var)
            then = node.then
            t_ref = 1 if then.is_sink else ids[then]
            if node.bot != node.var:
                # Parity span <var:bot> = X(var..bot) XNOR then: the
                # t-branch (odd parity) is the then-edge, the f-branch
                # its complement.  sv carries the first partner so the
                # frozen layout can rebuild the partner run sv..bot.
                sv.append(order.var_at(position(node.var) + 1))
                bot.append(node.bot)
                has_span = True
                t.append(t_ref)
                f.append(-t_ref)
                continue
            sv.append(-1)
            bot.append(-1)
            t.append(t_ref)
            els = node.else_
            f_ref = 1 if els.is_sink else ids[els]
            f.append(-f_ref if node.else_attr else f_ref)
        roots = {}
        for name, edge in named:
            node, attr = edge
            if node.is_sink:
                roots[name] = -1 if attr else 1
            else:
                roots[name] = -ids[node] if attr else ids[node]
        out = {
            "kind": self.backend,
            "pv": pv,
            "sv": sv,
            "t": t,
            "f": f,
            "roots": roots,
        }
        if has_span:
            # Chain column only when needed: plain freezes stay in the
            # 4-column RPARFRZ1 layout old readers attach.
            out["bot"] = bot
        return out

    def sat_count_edge(self, edge: BDDEdge) -> int:
        return self.sat_count(edge)

    def sat_one_edge(self, edge: BDDEdge) -> Optional[Dict[int, bool]]:
        from repro.bdd import ops as _ops

        return _ops.sat_one_edge(self, edge)

    def root_var(self, edge: BDDEdge) -> int:
        """The first support variable (in order) — the root's label."""
        return edge[0].var

    def sift(self, **kwargs):
        """Reorder variables with Rudell's sifting (see repro.bdd.reorder)."""
        from repro.bdd.reorder import sift_bdd as _sift

        return _sift(self, **kwargs)

    # ------------------------------------------------------------------
    # persistence (repro.io convenience surface)
    # ------------------------------------------------------------------

    def dump(self, functions, target, compress: bool = False) -> None:
        """Write a forest to ``target`` in the levelized BDD binary format.

        ``functions`` is a ``{name: BDDFunction}`` mapping (or a
        sequence); ``target`` a path or binary file object.
        ``compress=True`` writes the v2 ``FLAG_COMPRESSED`` container.
        See :mod:`repro.io.bdd_binary`.
        """
        from repro.io import bdd_binary as _binary

        _binary.dump(self, functions, target, compress=compress)

    def load(self, source, rename=None) -> dict:
        """Load a BDD dump *into this manager*; returns ``{name: BDDFunction}``.

        The dump's variables (after the optional ``rename`` mapping)
        must all exist here; nodes are re-reduced on the fly when the
        relative order differs.  To load into a fresh manager use
        :func:`repro.io.bdd_binary.load`.
        """
        from repro.io import bdd_binary as _binary

        _manager, functions = _binary.load(source, manager=self, rename=rename)
        return functions

    # ------------------------------------------------------------------
    # semantics
    # ------------------------------------------------------------------

    def evaluate(self, edge: BDDEdge, values: Dict[int, bool]) -> bool:
        node, attr = edge
        position = self._order.position
        order_seq = self._order._order
        while not node.is_sink:
            if node.bot != node.var:
                # Span: f = X(var..bot) ? then : ~then.
                x = bool(values[node.var])
                for p in range(position(node.var) + 1, position(node.bot) + 1):
                    x ^= bool(values[order_seq[p]])
                attr ^= not x
                node = node.then
            elif values[node.var]:
                node = node.then
            else:
                attr ^= node.else_attr
                node = node.else_
        return not attr

    def sat_count(self, edge: BDDEdge) -> int:
        """Satisfying-assignment count (iterative post-order, deep-safe)."""
        n = self.num_vars
        order = self._order
        memo: Dict[BDDNode, int] = {}

        def compute(node: BDDNode) -> int:
            p = order.position(node.var)
            span = n - p
            total = 0
            for child, attr in ((node.then, False), (node.else_, node.else_attr)):
                if child.is_sink:
                    sub = 0 if attr else (1 << (span - 1))
                else:
                    q = order.position(child.var)
                    sub = memo[child]
                    if attr:
                        sub = (1 << (n - q)) - sub
                    sub <<= q - (p + 1)
                total += sub
            return total

        node, attr = edge
        if node.is_sink:
            return 0 if attr else (1 << n)
        stack: List[BDDNode] = [node]
        while stack:
            top = stack[-1]
            if top in memo:
                stack.pop()
                continue
            if top.bot != top.var:
                # Span: the two parity branches are complements, so each
                # suffix assignment splits the space exactly in half.
                memo[top] = 1 << (n - order.position(top.var) - 1)
                stack.pop()
                continue
            pending = [
                c for c in (top.then, top.else_) if not c.is_sink and c not in memo
            ]
            if pending:
                stack.extend(pending)
                continue
            stack.pop()
            memo[top] = compute(top)
        p = order.position(node.var)
        c = memo[node]
        if attr:
            c = (1 << (n - p)) - c
        return c << p

    def count_nodes(self, edges: Iterable[BDDEdge]) -> int:
        seen: set = set()
        stack: List[BDDNode] = []
        for node, _attr in edges:
            if not node.is_sink and node not in seen:
                seen.add(node)
                stack.append(node)
        while stack:
            node = stack.pop()
            for child in (node.then, node.else_):
                if not child.is_sink and child not in seen:
                    seen.add(child)
                    stack.append(child)
        return len(seen)

    # ------------------------------------------------------------------
    # memory management
    # ------------------------------------------------------------------

    def size(self) -> int:
        return self._node_count

    def inc_ref(self, edge: BDDEdge) -> None:
        edge[0].ref += 1

    def dec_ref(self, edge: BDDEdge) -> None:
        edge[0].ref -= 1

    def acquire_ref(self, node: BDDNode) -> None:
        """Function-handle hook: acquire one reference on ``node``."""
        node.ref += 1

    def release_ref(self, node: BDDNode) -> None:
        """Function-handle hook: drop one reference (collected on gc())."""
        node.ref -= 1

    def gc(self) -> int:
        self._cache.clear()
        dead = [n for n in list(self._unique.values()) if n.ref == 0]
        reclaimed = 0
        for node in dead:
            if node.ref == 0:
                reclaimed += self._sweep(node)
        self.gc_count += 1
        self.gc_reclaimed += reclaimed
        return reclaimed

    def _sweep(self, node: BDDNode) -> int:
        reclaimed = 0
        stack = [node]
        while stack:
            n = stack.pop()
            if n.ref != 0 or n.is_sink:
                continue
            n.ref = -1
            self._unique.delete(n.key())
            self._node_count -= 1
            self._by_var[n.var].discard(n)
            for child in (n.then, n.else_):
                child.ref -= 1
                if child.ref == 0:
                    stack.append(child)
            reclaimed += 1
        return reclaimed

    def clear_cache(self) -> None:
        self._cache.clear()

    def defer_gc(self):
        """No-op GC deferral (API parity with the BBDD manager).

        The baseline package only collects on explicit :meth:`gc` calls,
        so shared drivers (e.g. the network builder) can hold bare edges
        freely; the context manager exists so they need not special-case
        the package.
        """
        import contextlib

        return contextlib.nullcontext(self)

    def nodes_with_pv(self, var: int) -> set:
        """Nodes labelled ``var`` (name kept parallel to the BBDD manager
        so the shared sifting driver works on both packages)."""
        return self._by_var[var]

    def table_stats(self) -> dict:
        return {
            "unique": self._unique.stats(),
            "computed": self._cache.stats(),
            "nodes": self._node_count,
            "peak_nodes": self.peak_nodes,
            "apply_calls": self.apply_calls,
            "gc_runs": self.gc_count,
            "gc_reclaimed": self.gc_reclaimed,
        }

    def collect_metrics(self, registry) -> None:
        """Sample this manager's counters into an obs registry.

        Same catalogued families as the BBDD manager, labeled
        ``backend="bdd"`` (see :mod:`repro.obs`).
        """
        from repro.obs.catalog import family

        unique = self._unique.stats()
        computed = self._cache.stats()
        label = {"backend": "bdd"}
        family(registry, "repro_manager_unique_lookups_total").labels(
            **label
        ).inc(unique.get("lookups", 0))
        family(registry, "repro_manager_unique_hits_total").labels(
            **label
        ).inc(unique.get("hits", 0))
        family(registry, "repro_manager_computed_lookups_total").labels(
            **label
        ).inc(computed.get("lookups", 0))
        family(registry, "repro_manager_computed_hits_total").labels(
            **label
        ).inc(computed.get("hits", 0))
        family(registry, "repro_manager_apply_total").labels(**label).inc(
            self.apply_calls
        )
        family(registry, "repro_manager_gc_runs_total").labels(**label).inc(
            self.gc_count
        )
        family(registry, "repro_manager_gc_reclaimed_total").labels(
            **label
        ).inc(self.gc_reclaimed)
        family(registry, "repro_manager_nodes").labels(**label).inc(
            self._node_count
        )
        family(registry, "repro_manager_peak_nodes").labels(**label).inc(
            self.peak_nodes
        )
        dead = sum(1 for n in self._unique.values() if n.ref == 0)
        family(registry, "repro_manager_dead_nodes").labels(**label).inc(dead)

    # ------------------------------------------------------------------
    # debugging
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        from repro.core.exceptions import InvariantViolation

        order = self._order
        seen = set()
        for node in list(self._unique.values()):
            key = node.key()
            if key in seen:
                raise InvariantViolation(f"duplicate key {key}")
            seen.add(key)
            if self._unique.lookup(key) is not node:
                raise InvariantViolation(f"key {key} does not map back to node")
            if node.ref < 0:
                raise InvariantViolation(f"swept node in table: {node!r}")
            if node.then is node.else_ and not node.else_attr:
                raise InvariantViolation(f"identical children: {node!r}")
            pos = order.position(node.var)
            bot_pos = order.position(node.bot)
            if node.bot != node.var:
                if not (node.then is node.else_ and node.else_attr):
                    raise InvariantViolation(f"span not parity-shaped: {node!r}")
                if bot_pos <= pos:
                    raise InvariantViolation(f"span bottom above top: {node!r}")
            for child in (node.then, node.else_):
                if not child.is_sink and order.position(child.var) <= bot_pos:
                    raise InvariantViolation(f"order violation {node!r} -> {child!r}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<BDDManager vars={len(self._names)} nodes={self._node_count}>"
