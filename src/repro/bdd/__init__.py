"""Baseline ROBDD package — the paper's CUDD comparator substitute.

A from-scratch Reduced Ordered Binary Decision Diagram package with the
same algorithmic content as a state-of-the-art BDD package (Brace/Rudell/
Bryant): complement edges (on else-edges and external edges, then-edges
regular), a strong-canonical unique table, a computed table, the recursive
apply over Shannon expansions, reference-counted garbage collection and
Rudell's sifting with in-place level swaps.

It mirrors the BBDD package API (``BDDManager`` / ``BDDFunction``), so the
Table I harness drives both packages identically.
"""

from repro.bdd.manager import BDDManager
from repro.bdd.function import BDDFunction

__all__ = ["BDDManager", "BDDFunction"]
