"""Derived operations for the baseline BDD package.

Brings the ROBDD backend to feature parity with the BBDD core
(:mod:`repro.core.apply`) so both plug into the uniform
:class:`repro.api.base.DDManager` protocol: native, memoized,
**iterative** ``restrict``, ``compose``, ``exists``/``forall``, plus
``support`` and a sat-path walker.  All procedures work on bare
``(node, attr)`` edges, use explicit stacks (no recursion on diagram
depth), and memoize in the manager's computed table under tagged keys —
the same key scheme as the BBDD core (two-operand apply keys are
``(uid, uid, op<16)`` triples; tagged keys lead with a distinct int >=
16 and a different tuple shape, so the families never collide).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.bdd.node import BDDEdge, BDDNode
from repro.core.apply import _memo_fns
from repro.core.operations import OP_AND, OP_OR

#: Computed-table tags (aligned with repro.core.apply's scheme).
TAG_RESTRICT = 17
TAG_QUANT = 18

_CALL = 0
_COMBINE = 1


def restrict(manager, edge: BDDEdge, var, value: bool) -> BDDEdge:
    """Cofactor ``f`` with ``var = value`` (Shannon restriction).

    Restriction commutes with complement, so memo entries are keyed on
    the bare node (``(TAG_RESTRICT, uid, var, value)``) and the incoming
    attribute is re-applied at the end.  Subgraphs rooted strictly below
    ``var`` in the order cannot mention it and are returned untouched.
    """
    var = manager.var_index(var)
    value = bool(value)
    root, root_attr = edge
    position = manager._order.position
    target_pos = position(var)
    if root.is_sink or position(root.var) > target_pos:
        return edge
    lookup, insert = _memo_fns(manager)
    make = manager._make
    results: List[BDDEdge] = []
    rpush = results.append
    rpop = results.pop
    tasks: List[tuple] = [(_CALL, root, None)]
    tpush = tasks.append
    tpop = tasks.pop
    while tasks:
        tag, node, key = tpop()
        if tag == _CALL:
            if node.is_sink or position(node.var) > target_pos:
                rpush((node, False))
                continue
            key = (TAG_RESTRICT, node.uid, var, value)
            cached = lookup(key)
            if cached is not None:
                rpush(cached)
                continue
            if node.var == var:
                result = (
                    (node.then, False) if value else (node.else_, node.else_attr)
                )
                insert(key, result)
                rpush(result)
                continue
            tpush((_COMBINE, node, key))
            tpush((_CALL, node.then, None))
            tpush((_CALL, node.else_, None))
            continue
        t = rpop()
        en, ea = rpop()
        result = make(node.var, t, (en, ea ^ node.else_attr))
        insert(key, result)
        rpush(result)
    node, attr = results[-1]
    return (node, attr ^ root_attr)


def compose(manager, edge: BDDEdge, var, g: BDDEdge) -> BDDEdge:
    """Substitute the function ``g`` for variable ``var`` in ``f``."""
    f1 = restrict(manager, edge, var, True)
    f0 = restrict(manager, edge, var, False)
    return manager.ite_edges(g, f1, f0)


def exists(manager, edge: BDDEdge, variables) -> BDDEdge:
    """Existential quantification over ``variables``."""
    return _quantify(manager, edge, variables, OP_OR)


def forall(manager, edge: BDDEdge, variables) -> BDDEdge:
    """Universal quantification over ``variables``."""
    return _quantify(manager, edge, variables, OP_AND)


def _as_iterable(variables):
    if isinstance(variables, (int, str)):
        return (variables,)
    return tuple(variables)


def _quantify(manager, edge: BDDEdge, variables, op: int) -> BDDEdge:
    result = edge
    for var in _as_iterable(variables):
        result = _quantify_one(manager, result, manager.var_index(var), op)
    return result


def _quantify_one(manager, edge: BDDEdge, var: int, op: int) -> BDDEdge:
    """Quantify one variable: ``Q f = (f|var=1) <op> (f|var=0)``.

    At a node labelled ``var`` both cofactors are the stored children,
    so the node collapses to ``then <op> else`` directly; above it the
    combining operator distributes through the Shannon expansion.
    Quantification does *not* commute with complement, so memo keys
    carry the edge attribute: ``(TAG_QUANT, uid, attr, var, op)``.
    """
    position = manager._order.position
    target_pos = position(var)
    root, root_attr = edge
    if root.is_sink or position(root.var) > target_pos:
        return edge
    lookup, insert = _memo_fns(manager)
    make = manager._make
    apply_edges = manager.apply_edges
    results: List[BDDEdge] = []
    rpush = results.append
    rpop = results.pop
    tasks: List[tuple] = [(_CALL, root, root_attr, None)]
    tpush = tasks.append
    tpop = tasks.pop
    while tasks:
        tag, node, attr, key = tpop()
        if tag == _CALL:
            if node.is_sink or position(node.var) > target_pos:
                rpush((node, attr))
                continue
            key = (TAG_QUANT, node.uid, attr, var, op)
            cached = lookup(key)
            if cached is not None:
                rpush(cached)
                continue
            if node.var == var:
                result = apply_edges(
                    (node.then, attr), (node.else_, attr ^ node.else_attr), op
                )
                insert(key, result)
                rpush(result)
                continue
            tpush((_COMBINE, node, attr, key))
            tpush((_CALL, node.then, attr, None))
            tpush((_CALL, node.else_, attr ^ node.else_attr, None))
            continue
        t = rpop()
        e = rpop()
        result = make(node.var, t, e)
        insert(key, result)
        rpush(result)
    return results[-1]


def support(manager, edge: BDDEdge) -> frozenset:
    """Variables ``f`` truly depends on (as indices).

    In a reduced OBDD every reachable node's label is essential (an
    inessential variable's node would have identical children and be
    removed by reduction), so the support is exactly the set of labels.
    """
    node, _attr = edge
    seen = set()
    vars_ = set()
    stack: List[BDDNode] = [] if node.is_sink else [node]
    while stack:
        n = stack.pop()
        if n in seen:
            continue
        seen.add(n)
        vars_.add(n.var)
        for child in (n.then, n.else_):
            if not child.is_sink:
                stack.append(child)
    return frozenset(vars_)


def sat_one_edge(manager, edge: BDDEdge) -> Optional[Dict[int, bool]]:
    """One satisfying assignment ``{var index: bit}``, or None.

    O(depth): every internal node of a canonical BDD with complement
    edges denotes a non-constant function, so descending into *any*
    non-sink child keeps both outcomes reachable; only sink children
    need their parity checked.
    """
    node, attr = edge
    if node.is_sink:
        return {} if not attr else None
    values: Dict[int, bool] = {}
    while True:
        # Then-edges of stored nodes are regular, so the then-branch
        # parity is the incoming attribute itself.
        branches = (
            (node.then, attr, True),
            (node.else_, attr ^ node.else_attr, False),
        )
        descend = None
        for child, child_attr, bit in branches:
            if child.is_sink:
                if not child_attr:
                    values[node.var] = bit
                    return values
            elif descend is None:
                descend = (child, child_attr, bit)
        if descend is None:
            # Both children are sinks of the wrong parity — impossible
            # for a canonical node; defensive for corrupt DAGs.
            return None
        child, attr, bit = descend
        values[node.var] = bit
        node = child


def iter_cohort_items(manager, edge: BDDEdge):
    """Yield ``edge``'s nodes top-down as cohort-sweep items.

    Shape documented in :mod:`repro.serve.bulk`: Shannon nodes test a
    single variable (``sv`` slot ``None``), the *t*-branch is the
    then-edge (always regular under the CUDD normalization) and the
    *f*-branch the else-edge with its complement attribute.  Nodes are
    grouped by order position; children sit at strictly greater
    positions, so ascending position emits parents first.
    """
    node, _attr = edge
    if node.is_sink:
        return
    position = manager.order.position
    buckets: Dict[int, List[BDDNode]] = {}
    seen = {node}
    stack = [node]
    while stack:
        n = stack.pop()
        buckets.setdefault(position(n.var), []).append(n)
        for child in (n.then, n.else_):
            if not child.is_sink and child not in seen:
                seen.add(child)
                stack.append(child)
    for pos in sorted(buckets):
        for n in sorted(buckets[pos], key=lambda x: x.uid):
            then, else_ = n.then, n.else_
            yield (
                n,
                n.var,
                None,
                None if then.is_sink else then,
                False,
                None if then.is_sink else then.var,
                None if else_.is_sink else else_,
                n.else_attr,
                None if else_.is_sink else else_.var,
            )
