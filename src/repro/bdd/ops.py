"""Derived operations for the baseline BDD package.

Brings the ROBDD backend to feature parity with the BBDD core
(:mod:`repro.core.apply`) so both plug into the uniform
:class:`repro.api.base.DDManager` protocol: native, memoized,
**iterative** ``restrict``, ``compose``, ``exists``/``forall``, plus
``support`` and a sat-path walker.  All procedures work on bare
``(node, attr)`` edges, use explicit stacks (no recursion on diagram
depth), and memoize in the manager's computed table under tagged keys —
the same key scheme as the BBDD core (two-operand apply keys are
``(uid, uid, op<16)`` triples; tagged keys lead with a distinct int >=
16 and a different tuple shape, so the families never collide).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.bdd.node import BDDEdge, BDDNode
from repro.core.apply import _memo_fns
from repro.core.operations import OP_AND, OP_OR, OP_XNOR

#: Computed-table tags (aligned with repro.core.apply's scheme).
TAG_RESTRICT = 17
TAG_QUANT = 18
TAG_ANDEX = 19

_CALL = 0
_COMBINE = 1
_COMBINE_SPAN = 2
_COMBINE_OR = 3


def _span_minus_var(manager, node: BDDNode, var: int) -> BDDEdge:
    """``X(span vars minus var) XNOR then`` — a span's cofactor shape.

    Restricting any span variable to 0 leaves the parity over the
    remaining span variables (to 1, its complement).  Built with plain
    applies so it re-canonicalizes under the manager's current rules.
    """
    position = manager._order.position
    order_seq = manager._order._order
    parity = None
    for p in range(position(node.var), position(node.bot) + 1):
        v2 = order_seq[p]
        if v2 == var:
            continue
        lit = manager.literal_edge(v2)
        parity = lit if parity is None else manager.xor_edges(parity, lit)
    return manager.apply_edges(parity, (node.then, False), OP_XNOR)


def restrict(manager, edge: BDDEdge, var, value: bool) -> BDDEdge:
    """Cofactor ``f`` with ``var = value`` (Shannon restriction).

    Restriction commutes with complement, so memo entries are keyed on
    the bare node (``(TAG_RESTRICT, uid, var, value)``) and the incoming
    attribute is re-applied at the end.  Subgraphs rooted strictly below
    ``var`` in the order cannot mention it and are returned untouched.
    """
    var = manager.var_index(var)
    value = bool(value)
    root, root_attr = edge
    position = manager._order.position
    target_pos = position(var)
    if root.is_sink or position(root.var) > target_pos:
        return edge
    lookup, insert = _memo_fns(manager)
    make = manager._make
    results: List[BDDEdge] = []
    rpush = results.append
    rpop = results.pop
    tasks: List[tuple] = [(_CALL, root, None)]
    tpush = tasks.append
    tpop = tasks.pop
    while tasks:
        tag, node, key = tpop()
        if tag == _CALL:
            if node.is_sink or position(node.var) > target_pos:
                rpush((node, False))
                continue
            key = (TAG_RESTRICT, node.uid, var, value)
            cached = lookup(key)
            if cached is not None:
                rpush(cached)
                continue
            if node.bot != node.var:
                # Parity span <var:bot>.
                if position(node.bot) >= target_pos:
                    # var is one of the span's variables: the cofactor
                    # is the parity over the remaining span variables
                    # (complemented when restricting to 1).
                    rn, ra = _span_minus_var(manager, node, var)
                    result = (rn, ra ^ value)
                else:
                    # var lives below the span: restrict the then-child
                    # and rebuild the span around it.
                    tpush((_COMBINE_SPAN, node, key))
                    tpush((_CALL, node.then, None))
                    continue
                insert(key, result)
                rpush(result)
                continue
            if node.var == var:
                result = (
                    (node.then, False) if value else (node.else_, node.else_attr)
                )
                insert(key, result)
                rpush(result)
                continue
            tpush((_COMBINE, node, key))
            tpush((_CALL, node.then, None))
            tpush((_CALL, node.else_, None))
            continue
        if tag == _COMBINE_SPAN:
            result = manager._make_span(node.var, node.bot, rpop())
            insert(key, result)
            rpush(result)
            continue
        t = rpop()
        en, ea = rpop()
        result = make(node.var, t, (en, ea ^ node.else_attr))
        insert(key, result)
        rpush(result)
    node, attr = results[-1]
    return (node, attr ^ root_attr)


def compose(manager, edge: BDDEdge, var, g: BDDEdge) -> BDDEdge:
    """Substitute the function ``g`` for variable ``var`` in ``f``."""
    f1 = restrict(manager, edge, var, True)
    f0 = restrict(manager, edge, var, False)
    return manager.ite_edges(g, f1, f0)


def exists(manager, edge: BDDEdge, variables) -> BDDEdge:
    """Existential quantification over ``variables``."""
    return _quantify(manager, edge, variables, OP_OR)


def forall(manager, edge: BDDEdge, variables) -> BDDEdge:
    """Universal quantification over ``variables``."""
    return _quantify(manager, edge, variables, OP_AND)


def _as_iterable(variables):
    if isinstance(variables, (int, str)):
        return (variables,)
    return tuple(variables)


def _quantify(manager, edge: BDDEdge, variables, op: int) -> BDDEdge:
    result = edge
    for var in _as_iterable(variables):
        result = _quantify_one(manager, result, manager.var_index(var), op)
    return result


def _quantify_one(manager, edge: BDDEdge, var: int, op: int) -> BDDEdge:
    """Quantify one variable: ``Q f = (f|var=1) <op> (f|var=0)``.

    At a node labelled ``var`` both cofactors are the stored children,
    so the node collapses to ``then <op> else`` directly; above it the
    combining operator distributes through the Shannon expansion.
    Quantification does *not* commute with complement, so memo keys
    carry the edge attribute: ``(TAG_QUANT, uid, attr, var, op)``.
    """
    position = manager._order.position
    target_pos = position(var)
    root, root_attr = edge
    if root.is_sink or position(root.var) > target_pos:
        return edge
    lookup, insert = _memo_fns(manager)
    make = manager._make
    apply_edges = manager.apply_edges
    results: List[BDDEdge] = []
    rpush = results.append
    rpop = results.pop
    tasks: List[tuple] = [(_CALL, root, root_attr, None)]
    tpush = tasks.append
    tpop = tasks.pop
    while tasks:
        tag, node, attr, key = tpop()
        if tag == _CALL:
            if node.is_sink or position(node.var) > target_pos:
                rpush((node, attr))
                continue
            key = (TAG_QUANT, node.uid, attr, var, op)
            cached = lookup(key)
            if cached is not None:
                rpush(cached)
                continue
            if node.bot != node.var:
                # Parity span: both cofactors are complements when var
                # is a span variable (the quantification is constant);
                # otherwise fall back to two span-aware restricts.
                signed = (node, attr)
                f0 = restrict(manager, signed, var, False)
                f1 = restrict(manager, signed, var, True)
                result = apply_edges(f0, f1, op)
                insert(key, result)
                rpush(result)
                continue
            if node.var == var:
                result = apply_edges(
                    (node.then, attr), (node.else_, attr ^ node.else_attr), op
                )
                insert(key, result)
                rpush(result)
                continue
            tpush((_COMBINE, node, attr, key))
            tpush((_CALL, node.then, attr, None))
            tpush((_CALL, node.else_, attr ^ node.else_attr, None))
            continue
        t = rpop()
        e = rpop()
        result = make(node.var, t, e)
        insert(key, result)
        rpush(result)
    return results[-1]


def and_exists(manager, f: BDDEdge, g: BDDEdge, variables) -> BDDEdge:
    """Relational product ``exists variables . f & g`` in one fused pass.

    The conjunction is never materialized: one memoized sweep expands
    both operands together on the top variable ``v``; where ``v`` is
    quantified the Shannon branches OR directly (existentials
    distribute over the disjunction), elsewhere the node rebuilds over
    the recursive children.  Subgraphs rooted entirely below the
    deepest quantified variable collapse to a plain cached AND, and a
    parity span at ``v`` cofactors through two span-aware restricts.
    Memoized ``(TAG_ANDEX, f_uid, f_attr, g_uid, g_attr, vmask)`` with
    the commutative operands in canonical order.
    """
    indices = sorted({manager.var_index(v) for v in _as_iterable(variables)})
    if not indices:
        return manager.apply_edges(f, g, OP_AND)
    position = manager._order.position
    vset = frozenset(indices)
    vmask = 0
    for index in indices:
        vmask |= 1 << index
    max_qpos = max(position(index) for index in indices)
    lookup, insert = _memo_fns(manager)
    make = manager._make
    apply_edges = manager.apply_edges
    false_edge = manager.false_edge
    results: List[BDDEdge] = []
    rpush = results.append
    rpop = results.pop
    tasks: List[tuple] = [(_CALL, f, g)]
    tpush = tasks.append
    tpop = tasks.pop
    while tasks:
        tag, a, b = tpop()
        if tag == _COMBINE:
            t = rpop()
            e = rpop()
            result = make(a, t, e)
            insert(b, result)
            rpush(result)
            continue
        if tag == _COMBINE_OR:
            t = rpop()
            e = rpop()
            result = apply_edges(t, e, OP_OR)
            insert(b, result)
            rpush(result)
            continue
        f, g = a, b
        fn, fa = f
        gn, ga = g
        if (gn.uid, ga) < (fn.uid, fa):  # AND commutes: canonical order.
            f, g = g, f
            fn, fa, gn, ga = gn, ga, fn, fa
        # -- terminal cases -----------------------------------------------
        if (fn.is_sink and fa) or (gn.is_sink and ga):
            rpush(false_edge)
            continue
        if fn is gn:
            if fa != ga:
                rpush(false_edge)
            else:
                rpush(exists(manager, f, indices))
            continue
        if fn.is_sink:  # f == TRUE
            rpush(exists(manager, g, indices))
            continue
        if gn.is_sink:  # g == TRUE
            rpush(exists(manager, f, indices))
            continue
        f_pos = position(fn.var)
        g_pos = position(gn.var)
        v_pos = f_pos if f_pos <= g_pos else g_pos
        if v_pos > max_qpos:
            # Every variable below here outranks the quantified set.
            rpush(apply_edges(f, g, OP_AND))
            continue

        key = (TAG_ANDEX, fn.uid, fa, gn.uid, ga, vmask)
        cached = lookup(key)
        if cached is not None:
            rpush(cached)
            continue

        v = fn.var if f_pos <= g_pos else gn.var
        if f_pos > v_pos:
            f1 = f0 = f
        elif fn.bot != fn.var:
            f1 = restrict(manager, f, v, True)
            f0 = restrict(manager, f, v, False)
        else:
            f1 = (fn.then, fa)
            f0 = (fn.else_, fa ^ fn.else_attr)
        if g_pos > v_pos:
            g1 = g0 = g
        elif gn.bot != gn.var:
            g1 = restrict(manager, g, v, True)
            g0 = restrict(manager, g, v, False)
        else:
            g1 = (gn.then, ga)
            g0 = (gn.else_, ga ^ gn.else_attr)
        if v in vset:
            tpush((_COMBINE_OR, None, key))
        else:
            tpush((_COMBINE, v, key))
        tpush((_CALL, f1, g1))
        tpush((_CALL, f0, g0))
    return results[-1]


def support(manager, edge: BDDEdge) -> frozenset:
    """Variables ``f`` truly depends on (as indices).

    In a reduced OBDD every reachable node's label is essential (an
    inessential variable's node would have identical children and be
    removed by reduction), so the support is exactly the set of labels.
    """
    node, _attr = edge
    position = manager._order.position
    order_seq = manager._order._order
    seen = set()
    vars_ = set()
    stack: List[BDDNode] = [] if node.is_sink else [node]
    while stack:
        n = stack.pop()
        if n in seen:
            continue
        seen.add(n)
        if n.bot != n.var:
            # A parity span depends on every variable it covers.
            for p in range(position(n.var), position(n.bot) + 1):
                vars_.add(order_seq[p])
        else:
            vars_.add(n.var)
        for child in (n.then, n.else_):
            if not child.is_sink:
                stack.append(child)
    return frozenset(vars_)


def sat_one_edge(manager, edge: BDDEdge) -> Optional[Dict[int, bool]]:
    """One satisfying assignment ``{var index: bit}``, or None.

    O(depth): every internal node of a canonical BDD with complement
    edges denotes a non-constant function, so descending into *any*
    non-sink child keeps both outcomes reachable; only sink children
    need their parity checked.
    """
    node, attr = edge
    if node.is_sink:
        return {} if not attr else None
    position = manager._order.position
    order_seq = manager._order._order
    values: Dict[int, bool] = {}

    def assign(n: BDDNode, bit: bool) -> None:
        # A span needs its whole variable run assigned: parity ``bit``
        # with the top variable carrying it and the rest cleared.
        values[n.var] = bit
        if n.bot != n.var:
            for p in range(position(n.var) + 1, position(n.bot) + 1):
                values[order_seq[p]] = False

    while True:
        # Then-edges of stored nodes are regular, so the then-branch
        # parity is the incoming attribute itself (for a span the
        # then-branch is the X=1 side, the else-branch X=0).
        branches = (
            (node.then, attr, True),
            (node.else_, attr ^ node.else_attr, False),
        )
        descend = None
        for child, child_attr, bit in branches:
            if child.is_sink:
                if not child_attr:
                    assign(node, bit)
                    return values
            elif descend is None:
                descend = (child, child_attr, bit)
        if descend is None:
            # Both children are sinks of the wrong parity — impossible
            # for a canonical node; defensive for corrupt DAGs.
            return None
        child, child_attr, bit = descend
        assign(node, bit)
        attr = child_attr
        node = child


def iter_cohort_items(manager, edge: BDDEdge):
    """Yield ``edge``'s nodes top-down as cohort-sweep items.

    Shape documented in :mod:`repro.serve.bulk`: Shannon nodes test a
    single variable (``sv`` slot ``None``), the *t*-branch is the
    then-edge (always regular under the CUDD normalization) and the
    *f*-branch the else-edge with its complement attribute.  A parity
    span ``<var:bot>`` puts the tuple of its remaining span variables
    in the ``sv`` slot — odd parity of ``var`` plus the partners takes
    the then-edge, even parity its complement.  Nodes are grouped by
    order position; children sit at strictly greater positions, so
    ascending position emits parents first.
    """
    node, _attr = edge
    if node.is_sink:
        return
    order = manager.order
    position = order.position
    buckets: Dict[int, List[BDDNode]] = {}
    seen = {node}
    stack = [node]
    while stack:
        n = stack.pop()
        buckets.setdefault(position(n.var), []).append(n)
        for child in (n.then, n.else_):
            if not child.is_sink and child not in seen:
                seen.add(child)
                stack.append(child)
    for pos in sorted(buckets):
        for n in sorted(buckets[pos], key=lambda x: x.uid):
            then, else_ = n.then, n.else_
            if n.bot != n.var:
                # Span <var:bot> = X(var..bot) XNOR then: odd parity
                # reaches the then-edge, even parity its complement.
                partners = tuple(
                    order.var_at(p)
                    for p in range(pos + 1, position(n.bot) + 1)
                )
                t_key = None if then.is_sink else then
                t_pv = None if then.is_sink else then.var
                yield (n, n.var, partners, t_key, False, t_pv, t_key, True, t_pv)
                continue
            yield (
                n,
                n.var,
                None,
                None if then.is_sink else then,
                False,
                None if then.is_sink else then.var,
                None if else_.is_sink else else_,
                n.else_attr,
                None if else_.is_sink else else_.var,
            )
