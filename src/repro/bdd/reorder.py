"""Dynamic variable ordering for the baseline BDD package.

Rudell's sifting with in-place level swaps: when positions ``k, k+1``
(variables ``x, y``) are exchanged, only the ``x``-nodes with a ``y``
child are rewritten — in place, so external edges stay valid (the node's
function is preserved) — while the remaining ``x``- and ``y``-nodes simply
change level implicitly (nodes are keyed by variable, not position).

The excursion driver is shared with the BBDD package
(:func:`repro.core.reorder.sift` with ``swap_fn=swap_adjacent_bdd``).
"""

from __future__ import annotations

from typing import List, Optional

from repro.bdd.node import BDDEdge, BDDNode
from repro.core.exceptions import BBDDError, OrderError
from repro.core.reorder import SiftResult, SwapStats
from repro.core.reorder import sift as _core_sift


def _cofactor_on(edge: BDDEdge, var: int) -> tuple:
    """Shannon cofactors (f|var=1, f|var=0) read off the old structure."""
    node, attr = edge
    if node.is_sink or node.var != var:
        return edge, edge
    return (node.then, attr), (node.else_, attr ^ node.else_attr)


def swap_adjacent_bdd(manager, k: int, stats: Optional[SwapStats] = None) -> None:
    """Swap the variables at order positions ``k`` and ``k + 1`` in place."""
    order = manager.order
    n = manager.num_vars
    if not 0 <= k < n - 1:
        raise OrderError(f"cannot swap positions {k},{k + 1} of {n}")
    if getattr(manager, "chain_reduce", False):
        raise OrderError(
            "cannot swap adjacent variables while chain reduction is "
            "active: parity spans are defined relative to the current "
            "order (expand spans or migrate to a plain manager first)"
        )
    x = order.var_at(k)
    y = order.var_at(k + 1)

    manager.clear_cache()

    # Reclaim garbage at the two concerned levels first.
    for var in (x, y):
        for node in [nd for nd in manager.nodes_with_pv(var) if nd.ref == 0]:
            if node.ref == 0:
                swept = manager._sweep(node)
                if stats:
                    stats.nodes_swept += swept

    # Only x-nodes with a y-child change; everything else moves implicitly.
    rewrites = []
    for node in list(manager.nodes_with_pv(x)):
        touches_y = (not node.then.is_sink and node.then.var == y) or (
            not node.else_.is_sink and node.else_.var == y
        )
        if not touches_y:
            continue
        t_edge: BDDEdge = (node.then, False)
        e_edge: BDDEdge = (node.else_, node.else_attr)
        t1, t0 = _cofactor_on(t_edge, y)
        e1, e0 = _cofactor_on(e_edge, y)
        rewrites.append((node, t1, t0, e1, e0))

    for node, *_rest in rewrites:
        manager._unique.delete(node.key())
    order.swap_positions(k)

    dead: List[BDDNode] = []
    for node, t1, t0, e1, e0 in rewrites:
        # f = y (x t1 + x' e1) + y' (x t0 + x' e0)
        new_t = manager._make(x, t1, e1)
        new_e = manager._make(x, t0, e0)
        tn, ta = new_t
        en, ea = new_e
        if ta:
            # A function-preserving rewrite cannot flip polarity (the
            # canonical attribute equals not f(1,..,1), order-independent).
            raise BBDDError("BDD swap produced a complemented then-edge")
        if tn is en and ta == ea:
            raise BBDDError("BDD swap collapsed a node that depends on y")
        old_children = (node.then, node.else_)
        manager._by_var[node.var].discard(node)
        node.var = y
        node.bot = y
        manager._by_var[y].add(node)
        node.then = tn
        node.else_ = en
        node.else_attr = ea
        tn.ref += 1
        en.ref += 1
        manager._unique.insert(node.key(), node)
        for child in old_children:
            child.ref -= 1
            if child.ref == 0 and not child.is_sink:
                dead.append(child)
        if stats:
            stats.nodes_rewritten += 1

    for node in dead:
        if node.ref == 0:
            swept = manager._sweep(node)
            if stats:
                stats.nodes_swept += swept

    if stats:
        stats.swaps += 1


def sift_bdd(
    manager,
    max_growth: float = 1.2,
    converge: bool = False,
    max_rounds: int = 4,
    max_swaps: Optional[int] = None,
) -> SiftResult:
    """Rudell's sifting on the baseline package (shared excursion driver)."""
    return _core_sift(
        manager,
        max_growth=max_growth,
        converge=converge,
        max_rounds=max_rounds,
        max_swaps=max_swaps,
        swap_fn=swap_adjacent_bdd,
    )


def reorder_to_bdd(manager, target_order, stats: Optional[SwapStats] = None) -> None:
    """Reorder the BDD manager to ``target_order`` via adjacent swaps."""
    target = [manager.var_index(v) for v in target_order]
    if sorted(target) != sorted(range(manager.num_vars)):
        raise OrderError("target order must be a permutation of all variables")
    for pos in range(manager.num_vars):
        want = target[pos]
        current = manager.order.position(want)
        while current > pos:
            swap_adjacent_bdd(manager, current - 1, stats)
            current -= 1
