"""repro.api — the unified, backend-agnostic front end.

One declarative surface over every decision-diagram backend (in the
style of tulip-control/``dd``):

* :func:`open` — factory: ``repro.open(backend="bbdd", vars=["a", "b"])``
  returns a manager implementing the :class:`~repro.api.base.DDManager`
  protocol; :func:`register_backend` plugs in new backends (sharded,
  external-memory, parallel, ...) without touching any client.
* :class:`~repro.api.base.DDManager` / :class:`~repro.api.base.FunctionBase`
  — the manager protocol and the shared function wrapper both backends
  implement (operators, ``ite``/``restrict``/``compose``/``exists``/
  ``forall``, ``sat_one``/``sat_count``, ``let`` substitution,
  ``dump``/``load``).
* :mod:`repro.api.expr` — the Boolean expression language behind
  ``manager.add_expr(s)`` and ``f.to_expr()``.

Built-in backends: ``"bbdd"`` (:class:`repro.core.BBDDManager`, the
paper's package), ``"bdd"`` (:class:`repro.bdd.BDDManager`, the CUDD
comparator substitute) and ``"xmem"``
(:class:`repro.xmem.XmemManager`, the external-memory levelized
backend — ``repro.open(backend="xmem", node_budget=...)``).
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence, Union

from repro.api.base import DDManager, FunctionBase
from repro.api.expr import ExprError, add_expr, parse
from repro.core.exceptions import BBDDError

#: Registered backend factories: name -> callable(variables, **kwargs).
_BACKENDS: Dict[str, Callable] = {}


def register_backend(name: str, factory: Callable) -> None:
    """Register (or replace) a backend factory under ``name``.

    ``factory(variables, **kwargs)`` must return a manager implementing
    the :class:`DDManager` protocol.  Names are case-insensitive.
    """
    _BACKENDS[name.lower()] = factory


def backends() -> tuple:
    """Names of the registered backends, sorted."""
    return tuple(sorted(_BACKENDS))


def _bbdd_factory(variables, **kwargs):
    from repro.core.manager import BBDDManager

    return BBDDManager(variables, **kwargs)


def _bdd_factory(variables, **kwargs):
    from repro.bdd.manager import BDDManager

    return BDDManager(variables, **kwargs)


def _xmem_factory(variables, **kwargs):
    from repro.xmem.manager import XmemManager

    return XmemManager(variables, **kwargs)


register_backend("bbdd", _bbdd_factory)
register_backend("bdd", _bdd_factory)
register_backend("xmem", _xmem_factory)


def open(
    backend: str = "bbdd",
    vars: Union[int, Sequence[str], None] = None,
    **kwargs,
) -> DDManager:
    """Create a decision-diagram manager of the requested backend.

    Parameters
    ----------
    backend:
        A registered backend name (``"bbdd"``, ``"bdd"``, or anything
        added with :func:`register_backend`); case-insensitive.
    vars:
        Number of variables or a sequence of distinct names (variables
        can also be appended later where the backend supports it).
    kwargs:
        Passed through to the backend factory (e.g. ``unique_backend``,
        ``computed_backend``, the BBDD GC knobs).
    """
    try:
        factory = _BACKENDS[backend.lower()]
    except (KeyError, AttributeError):
        raise BBDDError(
            f"unknown backend {backend!r}; registered backends: "
            f"{', '.join(backends())}"
        ) from None
    return factory(0 if vars is None else vars, **kwargs)


__all__ = [
    "DDManager",
    "FunctionBase",
    "ExprError",
    "add_expr",
    "parse",
    "open",
    "register_backend",
    "backends",
]
