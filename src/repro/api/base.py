"""Backend-agnostic manager protocol and the shared function wrapper.

This module defines the two halves of the unified ``repro.api`` front
end (in the style of tulip-control/``dd``):

* :class:`DDManager` — the **edge protocol** every decision-diagram
  backend implements.  A backend subclasses it and provides the
  primitives listed in its docstring, all operating on bare edges.
  An edge is an opaque per-backend value: the flat-store BBDD backend
  uses signed ints, the object backends ``(node, attr)`` tuples — the
  ``edge_*`` accessor hooks (with tuple-edge defaults) are the only
  way shared code inspects one.  Everything user-facing —
  :meth:`DDManager.add_expr`, :meth:`DDManager.let`, the whole
  :class:`FunctionBase` surface — is written once against that protocol
  and works identically on BBDDs (:class:`repro.core.BBDDManager`) and
  on the baseline ROBDDs (:class:`repro.bdd.BDDManager`).
* :class:`FunctionBase` — the user-facing handle.  It owns a reference
  on its root node, overloads the Boolean operators and implements the
  package API (evaluation, sat-count/sat-one, cofactors, composition,
  quantification, simultaneous substitution, expression export) purely
  in terms of the protocol, collapsing what used to be two near-
  duplicate wrapper modules.

Nothing here imports a concrete manager, so backends are free to import
this module at class-definition time.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Union

from repro.core.exceptions import BBDDError, ForeignManagerError, VariableError
from repro.core.operations import (
    OP_AND,
    OP_GT,
    OP_LE,
    OP_OR,
    OP_XNOR,
    OP_XOR,
    op_from_name,
)


def check_assignment_bit(bit, label, where: str) -> None:
    """Validate one assignment value (the shared strictness contract).

    Accepts ``bool`` and int ``0``/``1`` only; anything else raises
    ``TypeError`` naming the variable (``label``) and the context
    (``where`` — e.g. ``"assignment"`` or ``"assignment 3"``).  Used by
    both the single-query path (:meth:`FunctionBase.evaluate`) and the
    batch encoders (:mod:`repro.serve.bulk`), so the two surfaces
    cannot drift apart.
    """
    if isinstance(bit, bool):
        return
    if isinstance(bit, int) and bit in (0, 1):
        return
    raise TypeError(
        f"{where}: value for variable {label!r} must be a Boolean "
        f"(bool, or int 0/1), got {bit!r}"
    )


def duplicate_assignment_error(manager, index: int, where: str) -> VariableError:
    """The shared error for a variable assigned twice (name and index)."""
    return VariableError(
        f"{where} assigns variable {manager.var_name(index)!r} more than once"
    )


class DDManager:
    """The uniform decision-diagram manager protocol.

    A backend subclasses this and implements the primitives below
    (``NotImplementedError`` stubs here document the contract; they all
    take/return bare ``(node, attr)`` edges):

    ``true_edge`` / ``false_edge``
        Terminal edge properties.
    ``literal_edge(var, positive=True)``
        The projection function of a variable (name or index).
    ``apply_edges(f, g, op)``
        Any of the 16 two-operand operators (4-bit truth-table code).
    ``ite_edges(f, g, h)`` / ``restrict_edge(f, var, value)`` /
    ``compose_edge(f, var, g)`` / ``quantify_edge(f, vars, forall)``
        The derived manipulation operations.
    ``evaluate_edge(f, values)`` / ``sat_count_edge(f)`` /
    ``sat_one_edge(f)`` / ``support_edge(f)`` / ``root_var(f)`` /
    ``count_nodes(edges)``
        Semantics and structure queries (``values`` and the returned
        assignments are keyed by variable *index*).
    ``acquire_ref(node)`` / ``release_ref(node)`` / ``defer_gc()``
        Memory management hooks used by the function handles.
    ``var_index`` / ``var_name`` / ``num_vars`` / ``order`` /
    ``current_order`` / ``sift(**kw)`` / ``dump(functions, target)``
        Variable bookkeeping, reordering and persistence.

    The function-returning conveniences (``var``, ``nvar``,
    ``variables``, ``true``, ``false``, ``function``, ``node_count``)
    are installed by the backend's function module.
    """

    #: Registry name of the backend ("bbdd", "bdd", ...).
    backend = "abstract"

    # -- edge accessors ------------------------------------------------------
    #
    # Shared code never destructures an edge itself; it goes through
    # these hooks.  The defaults implement the ``(node, attr)`` tuple
    # coding used by the object backends; the flat-store BBDD backend
    # overrides all of them with signed-int arithmetic.

    def edge_node(self, edge):
        """The root node (handle/view object) of an edge."""
        return edge[0]

    def edge_attr(self, edge) -> bool:
        """The complement attribute of an edge."""
        return edge[1]

    def node_edge(self, node):
        """The regular (attribute-free) edge onto a node handle/view."""
        return (node, False)

    def negate_edge(self, edge):
        """The complement of an edge (no new nodes)."""
        return (edge[0], not edge[1])

    def edge_is_sink(self, edge) -> bool:
        """True iff the edge denotes a constant."""
        return edge[0].is_sink

    def edge_is_false(self, edge) -> bool:
        """True iff the edge denotes the constant FALSE."""
        return edge[0].is_sink and edge[1]

    def edge_uid(self, edge):
        """A hashable identity of the edge (memo keys, hashes)."""
        return (edge[0].uid, edge[1])

    def acquire_edge(self, edge) -> None:
        """Acquire one reference on an edge's root (handle creation)."""
        self.acquire_ref(edge[0])

    def release_edge(self, edge) -> None:
        """Release one reference on an edge's root (handle drop)."""
        self.release_ref(edge[0])

    # -- shared front-end surface (written once, works on any backend) --

    def add_expr(self, text: str):
        """Build a function from a Boolean expression string.

        Grammar (see :mod:`repro.api.expr`): ``& | ^ ~ -> <->``,
        ``ite(f, g, h)``, ``TRUE``/``FALSE``, and the quantifiers
        ``\\E x, y: ...`` / ``\\A x, y: ...``.
        """
        from repro.api.expr import add_expr

        return add_expr(self, text)

    def let(self, substitutions: Mapping, f: "FunctionBase"):
        """Manager-level spelling of :meth:`FunctionBase.let`."""
        if f.manager is not self:
            raise ForeignManagerError("function belongs to a different manager")
        return f.let(substitutions)

    def to_expr(self, f: "FunctionBase") -> str:
        """Manager-level spelling of :meth:`FunctionBase.to_expr`."""
        if f.manager is not self:
            raise ForeignManagerError("function belongs to a different manager")
        return f.to_expr()

    def evaluate_batch(self, f: "FunctionBase", assignments, workers: Optional[int] = None):
        """Manager-level spelling of :meth:`FunctionBase.evaluate_batch`."""
        if f.manager is not self:
            raise ForeignManagerError("function belongs to a different manager")
        return f.evaluate_batch(assignments, workers=workers)

    def weighted_count(self, f: "FunctionBase", weights=None, *, exact: bool = True):
        """Manager-level spelling of :meth:`FunctionBase.weighted_count`."""
        if f.manager is not self:
            raise ForeignManagerError("function belongs to a different manager")
        return f.weighted_count(weights, exact=exact)

    def p_one(self, f: "FunctionBase", weights=None, *, exact: bool = True):
        """Manager-level spelling of :meth:`FunctionBase.p_one`."""
        if f.manager is not self:
            raise ForeignManagerError("function belongs to a different manager")
        return f.p_one(weights, exact=exact)

    def marginals(
        self, f: "FunctionBase", weights=None, variables=None, *, exact: bool = True
    ):
        """Manager-level spelling of :meth:`FunctionBase.marginals`."""
        if f.manager is not self:
            raise ForeignManagerError("function belongs to a different manager")
        return f.marginals(weights, variables, exact=exact)

    def and_exists(self, f: "FunctionBase", g: "FunctionBase", variables):
        """Manager-level spelling of :meth:`FunctionBase.and_exists`."""
        if f.manager is not self or g.manager is not self:
            raise ForeignManagerError("function belongs to a different manager")
        return f.and_exists(g, variables)

    # -- batch protocol (repro.serve) ---------------------------------------

    def batch_stream(self, edge):
        """Top-down level stream of ``edge``'s diagram for cohort sweeps.

        Backends with a levelized structure return ``(root_key, items)``
        where ``items`` yields the reachable nodes parents-first in the
        shape documented in :mod:`repro.serve.bulk`; the batch queries
        below then run as a single sweep.  The default ``None`` makes
        them fall back to one root-to-sink walk per query, so any
        third-party backend is correct without knowing about batching.
        """
        return None

    def evaluate_batch_edges(self, edge, batch):
        """Evaluate one encoded batch (see :mod:`repro.serve.bulk`).

        With a :meth:`batch_stream` this is the levelized cohort sweep —
        ``O(nodes + queries)``; without one it degrades to the looped
        ``O(nodes × queries)`` walk per query.
        """
        stream = self.batch_stream(edge)
        if stream is not None:
            from repro.serve.bulk import cohort_sweep

            root_key, items = stream
            sat_even, _sat_odd = cohort_sweep(
                root_key, self.edge_attr(edge), items, batch.var_bits, batch.full
            )
            return batch.unpack(sat_even)
        evaluate = self.evaluate_edge
        return [
            evaluate(edge, values)
            for values in batch.iter_value_dicts(self.num_vars)
        ]

    def freeze_export(self, named):
        """Flatten a named forest into parallel int64 columns, or None.

        The array producer behind :meth:`repro.par.shm.ShmForest.freeze`
        (``named`` is a list of ``(name, edge)`` pairs).  Returns a dict
        of ``kind`` (the backend name), four per-slot integer lists
        ``pv``/``sv``/``t``/``f`` (slots 0 and 1 reserved, ``sv = -1``
        marks a single-variable test, child references are signed with
        ``abs(ref) == 1`` the sink) in one **global topological order**
        — children strictly after parents across all roots — and
        ``roots`` mapping each name to its signed root reference
        (``±1`` for constants).  Forests holding chain-reduced parity
        spans add a fifth column ``bot``: ``bot[i] >= 0`` marks a span
        whose partner run is the contiguous order positions from
        ``sv[i]`` down to ``bot[i]`` (``-1`` everywhere else).

        This default builds on :meth:`batch_stream`: backends without a
        structural level stream return None, and shared-memory callers
        fall back to the sequential in-process path.  Backends with a
        cheaper global enumeration override it.
        """
        infos: Dict[object, tuple] = {}
        node_roots: Dict[str, tuple] = {}
        # Item keys are only guaranteed unique *within* one stream (the
        # xmem backend, say, numbers nodes per root representation), so
        # each stream's keys are namespaced by a stream index; two names
        # rooted at the same node share one stream (and its slots).
        streams_by_node: Dict[object, tuple] = {}
        for name, edge in named:
            if self.edge_is_sink(edge):
                continue
            attr = self.edge_attr(edge)
            regular = self.negate_edge(edge) if attr else edge
            node_key = self.edge_uid(regular)
            entry = streams_by_node.get(node_key)
            if entry is None:
                stream = self.batch_stream(edge)
                if stream is None:
                    return None
                root_key, items = stream
                ns = len(streams_by_node)
                for key, pvv, svv, tk, tf, tpv, fk, ff, fpv in items:
                    infos.setdefault(
                        (ns, key),
                        (
                            (ns, key),
                            pvv,
                            svv,
                            None if tk is None else (ns, tk),
                            tf,
                            tpv,
                            None if fk is None else (ns, fk),
                            ff,
                            fpv,
                        ),
                    )
                entry = ((ns, root_key),)
                streams_by_node[node_key] = entry
            node_roots[name] = (entry[0], attr)
        # Reverse DFS post-order = parents before children, merged
        # across roots (a node shared between two roots keeps one slot).
        seen = set()
        order = []
        for name, _edge in named:
            entry = node_roots.get(name)
            if entry is None or entry[0] in seen:
                continue
            stack = [(entry[0], False)]
            while stack:
                key, finished = stack.pop()
                if finished:
                    order.append(key)
                    continue
                if key in seen:
                    continue
                seen.add(key)
                stack.append((key, True))
                item = infos[key]
                for child in (item[6], item[3]):
                    if child is not None and child not in seen:
                        stack.append((child, False))
        ids: Dict[object, int] = {}
        pv = [0, 0]
        sv = [-1, -1]
        bot = [-1, -1]
        t = [0, 0]
        f = [0, 0]
        has_span = False
        for key in reversed(order):
            ids[key] = 2 + len(ids)
        for key in reversed(order):
            _key, pvv, svv, t_key, t_flip, _tpv, f_key, f_flip, _fpv = infos[key]
            pv.append(pvv)
            if type(svv) is tuple:
                # Parity span: the item's sv slot is the tuple of
                # partner variables (a contiguous order-position run),
                # frozen as its first/last endpoints.
                sv.append(svv[0])
                bot.append(svv[-1])
                has_span = True
            else:
                sv.append(-1 if svv is None else svv)
                bot.append(-1)
            t_ref = 1 if t_key is None else ids[t_key]
            t.append(-t_ref if t_flip else t_ref)
            f_ref = 1 if f_key is None else ids[f_key]
            f.append(-f_ref if f_flip else f_ref)
        roots: Dict[str, int] = {}
        for name, edge in named:
            if self.edge_is_sink(edge):
                roots[name] = -1 if self.edge_is_false(edge) else 1
            else:
                key, attr = node_roots[name]
                roots[name] = -ids[key] if attr else ids[key]
        out = {
            "kind": self.backend,
            "pv": pv,
            "sv": sv,
            "t": t,
            "f": f,
            "roots": roots,
        }
        if has_span:
            out["bot"] = bot
        return out

    def satisfiable_batch_edges(self, edge, batch):
        """Batched cube satisfiability (see :func:`repro.serve.bulk.satisfiable_batch`).

        With a :meth:`batch_stream`, unconstrained queries flow into
        both branches of one sweep; the fallback restricts the edge by
        each cube and checks the cofactor against the 0-sink.
        """
        stream = self.batch_stream(edge)
        if stream is not None:
            from repro.serve.bulk import cube_sweep

            root_key, items = stream
            sat_even, _sat_odd = cube_sweep(
                root_key,
                self.edge_attr(edge),
                items,
                batch.var_bits,
                batch.known_bits or {},
                batch.full,
            )
            return batch.unpack(sat_even)
        results = []
        with self.defer_gc():
            for values in batch.iter_known_dicts():
                cofactor = edge
                for var, value in values.items():
                    cofactor = self.restrict_edge(cofactor, var, value)
                results.append(not self.edge_is_false(cofactor))
        return results

    def weighted_count_edge(self, edge, w1, w0, one, zero):
        """Weighted model count of ``edge`` (see :mod:`repro.wmc`).

        ``w1``/``w0`` are per-variable weight columns indexed by
        variable index, ``one``/``zero`` the units of the arithmetic in
        use (Fractions or floats).  With a :meth:`batch_stream` and a
        variable order this is the one-pass levelized
        :func:`repro.wmc.sweep.mass_sweep`; any other backend takes the
        protocol-pure memoized Shannon recursion
        (:func:`repro.wmc.sweep.shannon_count`) — correct without
        knowing the node layout.
        """
        from repro.wmc.sweep import mass_sweep, shannon_count, total_mass

        if self.edge_is_sink(edge):
            if self.edge_is_false(edge):
                return zero
            return total_mass(w1, w0, one)
        order_obj = getattr(self, "order", None)
        stream = self.batch_stream(edge) if order_obj is not None else None
        if stream is None:
            return shannon_count(self, edge, w1, w0, one, zero)
        root_key, items = stream
        order = tuple(order_obj.order)
        positions = [0] * self.num_vars
        for pos, var in enumerate(order):
            positions[var] = pos
        return mass_sweep(
            root_key,
            self.edge_attr(edge),
            items,
            order=order,
            positions=positions,
            w1=w1,
            w0=w0,
            one=one,
            zero=zero,
        )

    def and_exists_edges(self, f, g, variables):
        """Relational product ``exists variables . f & g``.

        The built-in backends override this with a fused one-pass
        cofactor sweep (:func:`repro.core.apply.and_exists`,
        :func:`repro.bdd.ops.and_exists`); this default composes public
        operations with *early quantification* — variables confined to
        one operand's support are quantified out of that operand before
        the conjunction, so only variables both operands mention pay
        for the intermediate product.
        """
        if isinstance(variables, (str, int)):
            variables = (variables,)
        indices = sorted({self.var_index(v) for v in variables})
        with self.defer_gc():
            if not indices:
                return self.apply_edges(f, g, OP_AND)
            fsupp = set(self.support_edge(f))
            gsupp = set(self.support_edge(g))
            f_only = [v for v in indices if v in fsupp and v not in gsupp]
            g_only = [v for v in indices if v in gsupp and v not in fsupp]
            shared = [v for v in indices if v in fsupp and v in gsupp]
            if f_only:
                f = self.quantify_edge(f, f_only, False)
            if g_only:
                g = self.quantify_edge(g, g_only, False)
            product = self.apply_edges(f, g, OP_AND)
            if shared:
                product = self.quantify_edge(product, shared, False)
            return product


def rebuild_function(manager, root, var_fn, target, memo=None):
    """Rebuild the regular (attribute-free) function of node ``root``
    inside ``target``, mapping every source variable through ``var_fn``
    (index -> target function).

    The workhorse behind simultaneous substitution
    (:meth:`FunctionBase.let`, where ``target`` is the source manager
    itself) and cross-backend migration
    (:class:`repro.io.migrate.ProtocolMigrator`): each Shannon node
    rebuilds as ``ite(var_fn(v), then, else)``, each biconditional
    couple as ``ite(var_fn(pv) <-> var_fn(sv), eq, neq)``, each literal
    as ``var_fn(pv)`` — substitution distributes over the expansions, so
    the walk is *simultaneous* by construction (values are never
    re-substituted).  Iterative post-order, memoized per source node:
    linear in the diagram size times the cost of the target operations.
    A caller copying a shared forest may pass one ``memo`` dict across
    calls to keep the sharing.

    The couple/Shannon walks are structural fast paths for the built-in
    backends; any other registered backend takes the protocol-pure
    Shannon decomposition via ``root_var``/``restrict_edge`` (the same
    one ``to_expr`` uses), so third-party backends plug in without this
    function knowing their node layout.
    """
    true = target.true()
    if root.is_sink:
        return true
    if memo is None:
        memo = {}
    backend = manager.backend
    if backend not in ("bbdd", "bdd"):
        return _rebuild_via_protocol(manager, root, var_fn, target, memo)
    bbdd_nodes = backend == "bbdd"
    stack = [root]
    while stack:
        top = stack[-1]
        if top in memo:
            stack.pop()
            continue
        if bbdd_nodes:
            if top.is_literal:
                memo[top] = var_fn(top.pv)
                stack.pop()
                continue
            children = (top.neq, top.eq)
        else:
            children = (top.then, top.else_)
        pending = [c for c in children if not c.is_sink and c not in memo]
        if pending:
            stack.extend(pending)
            continue
        stack.pop()
        if bbdd_nodes:
            e = true if top.eq.is_sink else memo[top.eq]
            if top.is_span:
                # Chain span (pv, sv:bot): f = eq xor pv xor sv ... xor bot
                # over every order position of the span (the != child is
                # the complemented = child, so only ``e`` is needed).
                order = manager.order
                x = var_fn(top.pv)
                for p in range(
                    order.position(top.sv), order.position(top.bot) + 1
                ):
                    x = ~x.xnor(var_fn(order.var_at(p)))
                memo[top] = ~e.xnor(x)
            else:
                d = true if top.neq.is_sink else memo[top.neq]
                if top.neq_attr:
                    d = ~d
                memo[top] = var_fn(top.pv).xnor(var_fn(top.sv)).ite(e, d)
        elif getattr(top, "is_span", False):
            # Parity span <var:bot>: f = (var xor ... xor bot) XNOR then
            # (the else-child is the complemented then-child).
            order = manager.order
            x = var_fn(top.var)
            for p in range(
                order.position(top.var) + 1, order.position(top.bot) + 1
            ):
                x = ~x.xnor(var_fn(order.var_at(p)))
            t = true if top.then.is_sink else memo[top.then]
            memo[top] = x.xnor(t)
        else:
            t = true if top.then.is_sink else memo[top.then]
            e = true if top.else_.is_sink else memo[top.else_]
            if top.else_attr:
                e = ~e
            memo[top] = var_fn(top.var).ite(t, e)
    return memo[root]


def _rebuild_via_protocol(manager, root, var_fn, target, memo):
    """Backend-agnostic :func:`rebuild_function` core.

    Decomposes through the edge protocol only (``root_var`` +
    ``restrict_edge``), memoized on ``(uid, attr)`` edge keys — the
    cofactors of ``f = ite(v, f|v=1, f|v=0)`` never mention ``v``, so
    mapping ``v`` through ``var_fn`` at every level is a simultaneous
    substitution.  Bare cofactor edges are parked across the walk, so
    GC stays deferred for its duration.
    """
    true = target.true()
    false = ~true
    edge_uid = manager.edge_uid
    pending: Dict[tuple, tuple] = {}
    with manager.defer_gc():
        root_edge = manager.node_edge(root)
        stack = [root_edge]
        while stack:
            edge = stack[-1]
            key = edge_uid(edge)
            if key in memo:
                stack.pop()
                continue
            if manager.edge_is_sink(edge):
                memo[key] = false if manager.edge_attr(edge) else true
                stack.pop()
                continue
            entry = pending.get(key)
            if entry is None:
                var = manager.root_var(edge)
                high = manager.restrict_edge(edge, var, True)
                low = manager.restrict_edge(edge, var, False)
                pending[key] = (var, high, low)
                stack.append(low)
                stack.append(high)
                continue
            var, high, low = entry
            t = memo[edge_uid(high)]
            e = memo[edge_uid(low)]
            memo[key] = var_fn(var).ite(t, e)
            stack.pop()
    return memo[edge_uid(root_edge)]


def install_function_helpers(manager_cls, function_cls) -> None:
    """Attach the function-returning conveniences to a manager class.

    Called by each backend's function module (which avoids a circular
    import between its manager and function modules) with its concrete
    :class:`FunctionBase` subclass; the installed surface —
    ``var``/``nvar``/``variables``/``true``/``false``/``function``/
    ``node_count`` — is therefore identical across backends by
    construction.
    """

    def var(self, name_or_index):
        return function_cls(self, self.literal_edge(name_or_index))

    def nvar(self, name_or_index):
        return function_cls(self, self.literal_edge(name_or_index, positive=False))

    def variables(self):
        return [function_cls(self, self.literal_edge(i)) for i in range(self.num_vars)]

    def true(self):
        return function_cls(self, self.true_edge)

    def false(self):
        return function_cls(self, self.false_edge)

    def function(self, edge):
        return function_cls(self, edge)

    def node_count(self, functions):
        edges = [f.edge if isinstance(f, FunctionBase) else f for f in functions]
        return self.count_nodes(edges)

    manager_cls.var = var
    manager_cls.nvar = nvar
    manager_cls.variables = variables
    manager_cls.true = true
    manager_cls.false = false
    manager_cls.function = function
    manager_cls.node_count = node_count


class FunctionBase:
    """A Boolean function handle over any :class:`DDManager` backend.

    Create instances through the manager helpers (``manager.var``,
    ``manager.true``, ``manager.add_expr``, ...) or by combining other
    functions with the overloaded operators.  Because both backends keep
    reduced, ordered, canonical diagrams, ``f == g`` is a pointer
    comparison on ``(node, attr)``.
    """

    __slots__ = ("manager", "_edge", "__weakref__")

    def __init__(self, manager, edge) -> None:
        self.manager = manager
        self._edge = edge
        manager.acquire_edge(edge)

    def __del__(self) -> None:
        # Interpreter shutdown may have torn down attributes already.
        edge = getattr(self, "_edge", None)
        if edge is None:
            return
        manager = getattr(self, "manager", None)
        if manager is None:
            return
        try:
            # Dropping a handle feeds the automatic garbage collector.
            manager.release_edge(edge)
        except Exception:  # pragma: no cover - interpreter teardown
            pass

    # -- identity -----------------------------------------------------------

    @property
    def edge(self):
        """The bare backend edge this handle references."""
        return self._edge

    @property
    def node(self):
        """The root node of this handle's edge (a backend node/view)."""
        return self.manager.edge_node(self._edge)

    @property
    def attr(self) -> bool:
        """The complement attribute of this handle's edge."""
        return self.manager.edge_attr(self._edge)

    def __eq__(self, other) -> bool:
        if not isinstance(other, FunctionBase):
            return NotImplemented
        return self.manager is other.manager and self._edge == other._edge

    def __hash__(self) -> int:
        return hash((id(self.manager), self.manager.edge_uid(self._edge)))

    def _wrap(self, edge) -> "FunctionBase":
        return type(self)(self.manager, edge)

    def _coerce(self, other):
        """Normalize an operand to an edge of this manager.

        Accepts a function of the same manager, or the Boolean constants
        ``True``/``False``/``1``/``0`` (``bool`` or ``int`` only — any
        other type raises ``TypeError``, including number-like objects
        that merely compare equal to 0 or 1).
        """
        if isinstance(other, FunctionBase):
            if other.manager is not self.manager:
                raise ForeignManagerError(
                    "cannot combine functions from different managers"
                )
            return other.edge
        if isinstance(other, bool):
            return self.manager.true_edge if other else self.manager.false_edge
        if isinstance(other, int) and other in (0, 1):
            return self.manager.true_edge if other else self.manager.false_edge
        raise TypeError(
            f"cannot combine {type(self).__name__} with {type(other).__name__}"
        )

    # -- Boolean operators --------------------------------------------------

    def apply(self, other, op: Union[int, str]) -> "FunctionBase":
        """Apply any of the 16 two-operand operators (table or name)."""
        if isinstance(op, str):
            op = op_from_name(op)
        return self._wrap(self.manager.apply_edges(self.edge, self._coerce(other), op))

    def __and__(self, other) -> "FunctionBase":
        return self.apply(other, OP_AND)

    __rand__ = __and__

    def __or__(self, other) -> "FunctionBase":
        return self.apply(other, OP_OR)

    __ror__ = __or__

    def __xor__(self, other) -> "FunctionBase":
        return self.apply(other, OP_XOR)

    __rxor__ = __xor__

    def __invert__(self) -> "FunctionBase":
        return self._wrap(self.manager.negate_edge(self._edge))

    def xnor(self, other) -> "FunctionBase":
        """Biconditional (equality) of two functions."""
        return self.apply(other, OP_XNOR)

    def implies(self, other) -> "FunctionBase":
        """Material implication ``self -> other``."""
        return self.apply(other, OP_LE)

    def and_not(self, other) -> "FunctionBase":
        """Difference ``self & ~other``."""
        return self.apply(other, OP_GT)

    def ite(self, g, h) -> "FunctionBase":
        """``self ? g : h``."""
        return self._wrap(
            self.manager.ite_edges(self.edge, self._coerce(g), self._coerce(h))
        )

    # -- constants ----------------------------------------------------------

    @property
    def is_true(self) -> bool:
        """True iff this is the constant TRUE (the regular sink edge)."""
        manager = self.manager
        return manager.edge_is_sink(self._edge) and not manager.edge_is_false(
            self._edge
        )

    @property
    def is_false(self) -> bool:
        """True iff this is the constant FALSE (the complemented sink)."""
        return self.manager.edge_is_false(self._edge)

    @property
    def is_constant(self) -> bool:
        """True iff this is TRUE or FALSE."""
        return self.manager.edge_is_sink(self._edge)

    # -- semantics ----------------------------------------------------------

    def _values_from(self, assignment: Mapping) -> Dict[int, bool]:
        """Normalize an assignment to ``{index: bool}``, strictly.

        Unknown variables raise :class:`VariableError`; a variable
        assigned twice (say, by name *and* by index) raises
        :class:`VariableError`; values other than ``bool``/``0``/``1``
        raise ``TypeError``.  This is the validation contract shared by
        :meth:`evaluate`, :meth:`evaluate_batch` and
        :meth:`satisfiable_batch` — constants included: an empty-support
        function still rejects a malformed mapping instead of silently
        ignoring it.
        """
        manager = self.manager
        values: Dict[int, bool] = {}
        for key, bit in assignment.items():
            index = manager.var_index(key)
            if index in values:
                raise duplicate_assignment_error(manager, index, "assignment")
            check_assignment_bit(bit, manager.var_name(index), "assignment")
            values[index] = bool(bit)
        return values

    def evaluate(self, assignment: Mapping) -> bool:
        """Evaluate at an assignment keyed by variable name or index.

        The assignment must cover the function's support variables;
        missing support variables raise
        :class:`~repro.core.exceptions.VariableError` *naming the
        missing variables*.  Variables outside the support may be
        omitted (they default to False, which cannot change the
        result).  Unknown variables, duplicate assignments and
        non-Boolean values are rejected even on constants (see
        :meth:`_values_from`).
        """
        values = self._values_from(assignment)
        if len(values) < self.manager.num_vars:
            # Partial assignment: the support check needs the actual
            # support (O(1) mask read on BBDDs, a DAG walk on BDDs —
            # complete assignments skip it entirely).
            missing = [
                v for v in self.manager.support_edge(self.edge) if v not in values
            ]
            if missing:
                names = ", ".join(
                    self.manager.var_name(v) for v in sorted(missing)
                )
                raise VariableError(
                    f"assignment misses support variable(s): {names}"
                )
            for var in range(self.manager.num_vars):
                values.setdefault(var, False)
        return self.manager.evaluate_edge(self.edge, values)

    def evaluate_batch(self, assignments, workers: Optional[int] = None) -> list:
        """Evaluate at many assignments with one levelized sweep.

        ``assignments`` is an iterable of mappings — each under the
        exact :meth:`evaluate` contract, with error messages naming the
        offending batch position and the missing variables — or a
        pre-packed :class:`repro.serve.bulk.ColumnBatch`.  Returns one
        ``bool`` per assignment, in order.  The whole batch flows
        through the diagram top-down as bitset cohorts
        (:mod:`repro.serve.bulk`), so the cost is
        ``O(nodes + queries)`` instead of one root-to-sink walk per
        query.

        With ``workers=N`` (truthy) the sweep runs across the shared
        worker pool of :mod:`repro.par`: the forest is frozen into
        shared memory and the batch's lane chunks are swept by ``N``
        processes in parallel — worthwhile for large batches on large
        diagrams.  Backends without a freeze export silently use the
        sequential path.
        """
        if workers:
            from repro.par import parallel_evaluate_batch

            return parallel_evaluate_batch(self, assignments, workers=workers)
        from repro.serve.bulk import evaluate_batch

        return evaluate_batch(self, assignments)

    def satisfiable_batch(self, assignments, workers: Optional[int] = None) -> list:
        """For each partial assignment (cube): is ``f ∧ cube`` satisfiable?

        Same input forms and error contract as :meth:`evaluate_batch`,
        except assignments may be partial — unconstrained variables are
        existentially quantified by the sweep itself (a query flows
        into both branches where its cube does not decide the test).
        ``workers=N`` parallelizes exactly like :meth:`evaluate_batch`.
        """
        if workers:
            from repro.par import parallel_satisfiable_batch

            return parallel_satisfiable_batch(self, assignments, workers=workers)
        from repro.serve.bulk import satisfiable_batch

        return satisfiable_batch(self, assignments)

    def __call__(self, **kwargs) -> bool:
        return self.evaluate(kwargs)

    def sat_count(self) -> int:
        """Number of satisfying assignments over all manager variables."""
        return self.manager.sat_count_edge(self.edge)

    def weighted_count(self, weights=None, *, exact: bool = True):
        """Weighted model count over all manager variables.

        ``weights`` maps variables to ``(w1, w0)`` pairs or single
        numbers ``p`` (meaning ``(p, 1 - p)``); unmentioned variables
        weigh ``(1, 1)``.  See :func:`repro.wmc.weighted_count`.
        """
        from repro.wmc import weighted_count

        return weighted_count(self, weights, exact=exact)

    def p_one(self, weights=None, *, exact: bool = True):
        """``p(f = 1)`` under independent per-variable probabilities.

        ``weights`` maps variables to ``p(v = 1)``; unmentioned
        variables default to ``1/2``.  See :func:`repro.wmc.p_one`.
        """
        from repro.wmc import p_one

        return p_one(self, weights, exact=exact)

    def marginals(self, weights=None, variables=None, *, exact: bool = True):
        """Posterior marginals ``p(v = 1 | f = 1)`` per support variable.

        See :func:`repro.wmc.marginals`.
        """
        from repro.wmc import marginals

        return marginals(self, weights, variables, exact=exact)

    def sat_one(self) -> Optional[Dict[str, bool]]:
        """One satisfying assignment (by name), or None if unsatisfiable.

        The assignment covers the function's whole support (support
        variables the witness path leaves unconstrained are fixed to
        False), so it always evaluates to True via :meth:`evaluate`.
        """
        values = self.manager.sat_one_edge(self.edge)
        if values is None:
            return None
        for var in self.manager.support_edge(self.edge):
            values.setdefault(var, False)
        return {self.manager.var_name(v): b for v, b in values.items()}

    def node_count(self) -> int:
        """Nodes of this function's diagram (sink excluded)."""
        return self.manager.count_nodes([self.edge])

    def support(self) -> frozenset:
        """Names of the variables the function truly depends on."""
        return frozenset(
            self.manager.var_name(v) for v in self.manager.support_edge(self.edge)
        )

    def truth_mask(self, variables: Iterable) -> int:
        """Truth-table bitmask over the given variables (testing helper)."""
        manager = self.manager
        indices = [manager.var_index(v) for v in variables]
        values: Dict[int, bool] = {v: False for v in range(manager.num_vars)}
        mask = 0
        edge = self.edge
        for i in range(1 << len(indices)):
            for j, var in enumerate(indices):
                values[var] = bool((i >> j) & 1)
            if manager.evaluate_edge(edge, values):
                mask |= 1 << i
        return mask

    # -- manipulation -------------------------------------------------------

    def restrict(self, var, value: bool) -> "FunctionBase":
        """Cofactor with ``var = value``."""
        return self._wrap(self.manager.restrict_edge(self.edge, var, value))

    def compose(self, var, g) -> "FunctionBase":
        """Substitute function ``g`` for variable ``var``."""
        return self._wrap(
            self.manager.compose_edge(self.edge, var, self._coerce(g))
        )

    def exists(self, variables) -> "FunctionBase":
        """Existential quantification over ``variables`` (names/indices)."""
        return self._wrap(self.manager.quantify_edge(self.edge, variables, False))

    def forall(self, variables) -> "FunctionBase":
        """Universal quantification over ``variables`` (names/indices)."""
        return self._wrap(self.manager.quantify_edge(self.edge, variables, True))

    def and_exists(self, other, variables) -> "FunctionBase":
        """Relational product ``exists variables . self & other``.

        One fused sweep on the built-in backends — the conjunction is
        never materialized, which is what makes symbolic image
        computation (:mod:`repro.reach`) scale.
        """
        return self._wrap(
            self.manager.and_exists_edges(self.edge, self._coerce(other), variables)
        )

    def equivalent(self, other) -> bool:
        """Canonicity-based equivalence check (pointer comparison)."""
        return self._edge == self._coerce(other)

    def let(self, substitutions: Mapping) -> "FunctionBase":
        """Simultaneous substitution (the ``dd``-style ``let``).

        ``substitutions`` maps variables (names or indices) to
        replacement values, which may be

        * a variable **name** (``str``) — rename,
        * a Boolean **constant** (``bool`` or ``int`` 0/1) — restrict,
        * a **function** of the same manager — compose.

        All substitutions happen simultaneously: ``f.let({'x': 'y',
        'y': 'x'})`` swaps the two variables, unlike a chain of
        one-at-a-time ``compose`` calls.  Internally the function's
        diagram is rebuilt bottom-up with every variable mapped through
        the substitution (a vector compose), so values may freely
        mention the substituted variables, and the cost is linear in
        the diagram size — bulk renames of many variables are cheap.
        """
        manager = self.manager
        consts = []
        funcs = []
        seen = set()
        for var, value in substitutions.items():
            index = manager.var_index(var)
            if index in seen:
                raise BBDDError(
                    f"duplicate substitution for {manager.var_name(index)!r}"
                )
            seen.add(index)
            if isinstance(value, FunctionBase):
                if value.manager is not manager:
                    raise ForeignManagerError(
                        "substitution value belongs to a different manager"
                    )
                funcs.append((index, value))
            elif isinstance(value, str):
                funcs.append((index, self._wrap(manager.literal_edge(value))))
            elif isinstance(value, bool) or (
                isinstance(value, int) and value in (0, 1)
            ):
                consts.append((index, bool(value)))
            else:
                raise TypeError(
                    "let values must be a variable name, a Boolean "
                    f"constant, or a function; got {type(value).__name__}"
                )
        f = self
        # Constants commute with everything: plain restricts, cheapest
        # first.  They also cannot collide with the simultaneous pass
        # below because each key is distinct.
        for index, bit in consts:
            f = f.restrict(index, bit)
        if not funcs:
            return f
        # Simultaneous general substitution: rebuild f's diagram with
        # every variable mapped through the substitution (vector
        # compose).  Values are resolved against the *original* f, so
        # they are never re-substituted — simultaneity by construction.
        values: Dict[int, "FunctionBase"] = dict(funcs)

        def var_fn(index: int) -> "FunctionBase":
            value = values.get(index)
            if value is None:
                value = self._wrap(manager.literal_edge(index))
                values[index] = value
            return value

        result = rebuild_function(manager, f.node, var_fn, manager)
        return ~result if f.attr else result

    # -- expression export --------------------------------------------------

    def to_expr(self) -> str:
        """Canonical, re-parseable expression string of the function.

        The output uses only ``ite(v, T, E)`` nests (Shannon expansion on
        the first support variable in the current order), literal
        shortcuts ``v`` / ``~v``, and the constants ``TRUE``/``FALSE`` —
        all inside the :meth:`DDManager.add_expr` grammar, so
        ``manager.add_expr(f.to_expr()) == f`` for every function.  The
        string is deterministic for a given function and variable order.

        The grammar has no sharing construct (no let-binding), so the
        output is a *tree*: a shared subgraph is re-rendered at every
        reference, and share-heavy functions (e.g. wide parities) grow
        exponentially in their support size.  ``to_expr`` is an
        interchange/debugging surface for small functions — persist
        large forests with :meth:`dump`, which keeps the DAG sharing.

        Variable names that the grammar cannot re-tokenize — non-
        identifiers, or collisions with the ``TRUE``/``FALSE``/``ite``
        keywords — raise :class:`~repro.api.expr.ExprError` instead of
        silently emitting a string that parses to a different function.
        """
        from repro.api.expr import exportable_name

        manager = self.manager
        memo: Dict[tuple, str] = {}
        pending: Dict[tuple, tuple] = {}
        root = self.edge
        # Iterative post-order: bare child edges are parked in ``pending``
        # until both sub-expressions are rendered, so GC stays deferred
        # for the whole walk.
        edge_uid = manager.edge_uid
        with manager.defer_gc():
            stack = [root]
            while stack:
                edge = stack[-1]
                key = edge_uid(edge)
                if key in memo:
                    stack.pop()
                    continue
                if manager.edge_is_sink(edge):
                    memo[key] = "FALSE" if manager.edge_attr(edge) else "TRUE"
                    stack.pop()
                    continue
                entry = pending.get(key)
                if entry is None:
                    var = manager.root_var(edge)
                    high = manager.restrict_edge(edge, var, True)
                    low = manager.restrict_edge(edge, var, False)
                    pending[key] = (var, high, low)
                    stack.append(low)
                    stack.append(high)
                    continue
                var, high, low = entry
                s1 = memo[edge_uid(high)]
                s0 = memo[edge_uid(low)]
                name = exportable_name(manager.var_name(var))
                if s1 == "TRUE" and s0 == "FALSE":
                    memo[key] = name
                elif s1 == "FALSE" and s0 == "TRUE":
                    memo[key] = "~" + name
                else:
                    memo[key] = f"ite({name}, {s1}, {s0})"
                stack.pop()
        return memo[edge_uid(root)]

    # -- persistence --------------------------------------------------------

    def dump(self, target, name: str = "f0", compress: bool = False) -> None:
        """Write this function to ``target`` in the backend's binary format.

        ``target`` is a path or a binary file object; ``name`` is the
        root's stored name (what the loader keys it by);
        ``compress=True`` writes the v2 ``FLAG_COMPRESSED`` container.
        """
        self.manager.dump({name: self}, target, compress=compress)

    # -- display ------------------------------------------------------------

    def __repr__(self) -> str:
        label = type(self).__name__
        if self.is_true:
            return f"<{label} TRUE>"
        if self.is_false:
            return f"<{label} FALSE>"
        return (
            f"<{label} root=v{self.manager.root_var(self.edge)}"
            f"{'~' if self.attr else ''} nodes={self.node_count()}>"
        )
