"""Boolean expression language for the unified front end.

A small recursive-descent parser over the grammar (precedence low to
high; ``->`` is right-associative, the other binary operators are
left-associative)::

    expr    := quant
    quant   := ('\\E' | '\\A') names ':' quant | iff
    iff     := imp ('<->' imp)*
    imp     := or ('->' imp)?
    or      := xor ('|' xor)*
    xor     := and ('^' and)*
    and     := unary ('&' unary)*
    unary   := '~' unary | atom
    atom    := '(' expr ')' | 'ite' '(' expr ',' expr ',' expr ')'
             | 'TRUE' | 'FALSE' | name
    names   := name (',' name)*

Quantifiers scope to the end of the expression (parenthesize to bound
them): ``\\E x, y: x & y | z`` quantifies the whole disjunction.

The AST is plain tuples — ``('var', name)``, ``('const', bool)``,
``('not', e)``, ``('and'|'or'|'xor'|'imp'|'iff', a, b)``,
``('ite', f, g, h)``, ``('exists'|'forall', [names], e)`` — and
:func:`add_expr` evaluates it **iteratively** against any
:class:`~repro.api.base.DDManager` backend, so operator chains of
arbitrary length (``x0 ^ x1 ^ ... ^ x4000``) build without touching the
Python recursion limit.
"""

from __future__ import annotations

import re
from typing import List, Tuple

from repro.core.exceptions import BBDDError


class ExprError(BBDDError, ValueError):
    """A Boolean expression string failed to tokenize or parse."""


_TOKEN_RE = re.compile(
    r"[ \t\r\n]*(?:"
    r"(?P<name>[A-Za-z_][A-Za-z0-9_]*)"
    r"|(?P<op><->|->|\\E|\\A|[~&|^(),:])"
    r"|(?P<bad>\S)"
    r")"
)

#: Token sentinel appended at end of input.
_END = ("end", "")

#: Names the lexer/parser claims for itself.
_KEYWORDS = frozenset({"TRUE", "FALSE", "ite"})

_NAME_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*\Z")


def exportable_name(name: str) -> str:
    """Validate that a variable name survives an expression round trip.

    ``to_expr`` output must re-tokenize to the same function, so names
    must be grammar identifiers and must not collide with the
    ``TRUE``/``FALSE``/``ite`` keywords; anything else raises
    :class:`ExprError` (silently emitting it would parse back to a
    *different* function).
    """
    if name in _KEYWORDS or _NAME_RE.match(name) is None:
        raise ExprError(
            f"variable name {name!r} cannot be exported to the expression "
            "grammar (not an identifier, or a TRUE/FALSE/ite keyword); "
            "rename it or persist with dump() instead"
        )
    return name


def tokenize(text: str) -> List[Tuple[str, str]]:
    """Split ``text`` into ``(kind, value)`` tokens (kind: name/op/end)."""
    tokens: List[Tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:  # only trailing whitespace remains
            break
        if match.group("bad") is not None:
            raise ExprError(
                f"unexpected character {match.group('bad')!r} at offset "
                f"{match.start('bad')} in expression"
            )
        if match.group("name") is not None:
            tokens.append(("name", match.group("name")))
        else:
            tokens.append(("op", match.group("op")))
        pos = match.end()
    tokens.append(_END)
    return tokens


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = tokenize(text)
        self.pos = 0

    # -- token helpers --------------------------------------------------

    def peek(self) -> Tuple[str, str]:
        """The current token without consuming it."""
        return self.tokens[self.pos]

    def next(self) -> Tuple[str, str]:
        """Consume and return the current token."""
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def expect(self, value: str) -> None:
        """Consume one token, requiring it to be ``value``."""
        kind, got = self.next()
        if kind == "end" or got != value:
            shown = "end of input" if kind == "end" else repr(got)
            raise ExprError(
                f"expected {value!r} but found {shown} in {self.text!r}"
            )

    # -- grammar --------------------------------------------------------

    def parse(self) -> tuple:
        """Parse a full expression; trailing tokens are an error."""
        ast = self.expr()
        kind, value = self.peek()
        if kind != "end":
            raise ExprError(
                f"unexpected trailing {value!r} in {self.text!r}"
            )
        return ast

    def expr(self) -> tuple:
        """``expr := quantifier | iff`` (quantifiers scope rightward)."""
        kind, value = self.peek()
        if kind == "op" and value in ("\\E", "\\A"):
            self.next()
            names = [self.name("quantified variable")]
            while self.peek() == ("op", ","):
                self.next()
                names.append(self.name("quantified variable"))
            self.expect(":")
            body = self.expr()
            return ("exists" if value == "\\E" else "forall", names, body)
        return self.iff()

    def name(self, what: str) -> str:
        """Consume one identifier token (``what`` labels the error)."""
        kind, value = self.next()
        if kind != "name":
            shown = "end of input" if kind == "end" else repr(value)
            raise ExprError(f"expected {what} but found {shown}")
        return value

    def iff(self) -> tuple:
        """``iff := imp (<-> imp)*`` (left-associative)."""
        ast = self.imp()
        while self.peek() == ("op", "<->"):
            self.next()
            ast = ("iff", ast, self.imp())
        return ast

    def imp(self) -> tuple:
        """``imp := or (-> imp)?`` (right-associative)."""
        ast = self.or_()
        if self.peek() == ("op", "->"):
            self.next()
            ast = ("imp", ast, self.imp())  # right-associative
        return ast

    def or_(self) -> tuple:
        """``or := xor (| xor)*``."""
        ast = self.xor()
        while self.peek() == ("op", "|"):
            self.next()
            ast = ("or", ast, self.xor())
        return ast

    def xor(self) -> tuple:
        """``xor := and (^ and)*``."""
        ast = self.and_()
        while self.peek() == ("op", "^"):
            self.next()
            ast = ("xor", ast, self.and_())
        return ast

    def and_(self) -> tuple:
        """``and := unary (& unary)*``."""
        ast = self.unary()
        while self.peek() == ("op", "&"):
            self.next()
            ast = ("and", ast, self.unary())
        return ast

    def unary(self) -> tuple:
        """``unary := ~ unary | atom``."""
        if self.peek() == ("op", "~"):
            self.next()
            return ("not", self.unary())
        return self.atom()

    def atom(self) -> tuple:
        """``atom := ( expr ) | ite(f, g, h) | TRUE | FALSE | name``."""
        kind, value = self.next()
        if kind == "op" and value == "(":
            ast = self.expr()
            self.expect(")")
            return ast
        if kind == "name":
            if value == "ite" and self.peek() == ("op", "("):
                self.next()
                f = self.expr()
                self.expect(",")
                g = self.expr()
                self.expect(",")
                h = self.expr()
                self.expect(")")
                return ("ite", f, g, h)
            if value == "TRUE":
                return ("const", True)
            if value == "FALSE":
                return ("const", False)
            return ("var", value)
        shown = "end of input" if kind == "end" else repr(value)
        raise ExprError(f"expected an operand but found {shown} in {self.text!r}")


def parse(text: str) -> tuple:
    """Parse an expression string into its tuple AST."""
    if not isinstance(text, str):
        raise ExprError(f"expression must be a string, got {type(text).__name__}")
    return _Parser(text).parse()


# ----------------------------------------------------------------------
# evaluation against a manager
# ----------------------------------------------------------------------

_EVAL = 0
_COMBINE = 1


def build(manager, ast: tuple):
    """Evaluate a parsed AST into a function of ``manager``.

    Iterative over an explicit stack, so left-deep operator chains of
    arbitrary length evaluate without recursion.
    """
    results: list = []
    tasks = [(_EVAL, ast)]
    while tasks:
        tag, node = tasks.pop()
        kind = node[0]
        if tag == _COMBINE:
            if kind == "not":
                results.append(~results.pop())
            elif kind == "ite":
                h = results.pop()
                g = results.pop()
                f = results.pop()
                results.append(f.ite(g, h))
            elif kind in ("exists", "forall"):
                body = results.pop()
                if kind == "exists":
                    results.append(body.exists(node[1]))
                else:
                    results.append(body.forall(node[1]))
            else:
                b = results.pop()
                a = results.pop()
                if kind == "and":
                    results.append(a & b)
                elif kind == "or":
                    results.append(a | b)
                elif kind == "xor":
                    results.append(a ^ b)
                elif kind == "imp":
                    results.append(a.implies(b))
                else:  # iff
                    results.append(a.xnor(b))
            continue
        if kind == "const":
            results.append(manager.true() if node[1] else manager.false())
        elif kind == "var":
            results.append(manager.var(node[1]))
        elif kind == "not":
            tasks.append((_COMBINE, node))
            tasks.append((_EVAL, node[1]))
        elif kind == "ite":
            tasks.append((_COMBINE, node))
            # Push in reverse so operands are *evaluated* (and their
            # results stacked) in source order.
            tasks.append((_EVAL, node[3]))
            tasks.append((_EVAL, node[2]))
            tasks.append((_EVAL, node[1]))
        elif kind in ("exists", "forall"):
            tasks.append((_COMBINE, node))
            tasks.append((_EVAL, node[2]))
        else:
            tasks.append((_COMBINE, node))
            tasks.append((_EVAL, node[2]))
            tasks.append((_EVAL, node[1]))
    return results[-1]


def add_expr(manager, text: str):
    """Parse ``text`` and build it as a function of ``manager``."""
    return build(manager, parse(text))
