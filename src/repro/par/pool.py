"""Multi-core cohort sweeps over shared-memory forests.

A :class:`ParallelPool` keeps a persistent crew of worker processes
(:class:`~repro.par.dispatch.WorkerCrew`) that attach
:class:`~repro.par.shm.ShmForest` segments **zero-copy** and run the
levelized cohort sweeps of :mod:`repro.serve.bulk` on lane ranges of a
query batch.  The batch is encoded once in the dispatcher, *staged* to
every worker (one pickle per worker, amortized over all of the batch's
sweeps), and then split into contiguous lane chunks — each worker
sweeps its chunks against the mapped arrays and ships back one raw
result bitset, so the per-task wire traffic is tiny in both directions.

``workers=0`` runs the same code path inline (no subprocesses): the
right default for tests and single-core machines, with identical
results and error behaviour.

Worker deaths are survived: the crew respawns the worker (which
re-attaches segments lazily) and the in-flight batch is retried once
under a fresh staging id, with ``batch_retries`` / ``worker_restarts``
surfaced through :mod:`repro.obs`.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.par.dispatch import CrewError, WorkerCrew, WorkerRestarted
from repro.par.shm import ParError, ShmForest

#: Staged batches a worker keeps around (overlapping pipelines).
_MAX_STAGED = 4

#: Smallest lane chunk worth shipping to a worker.
_MIN_LANES = 1024


class _WorkerState:
    """Per-worker-process attachment cache and counters."""

    def __init__(self, max_attached: int) -> None:
        self.max_attached = max_attached
        self.attached: "OrderedDict[str, ShmForest]" = OrderedDict()
        self.staged: "OrderedDict[object, object]" = OrderedDict()
        self.attaches = 0

        from repro import obs

        obs.track(self)

    def forest(self, segment: str) -> ShmForest:
        """The attached forest for ``segment`` (attaching on first use)."""
        forest = self.attached.get(segment)
        if forest is None:
            forest = ShmForest.attach(segment)
            self.attached[segment] = forest
            self.attaches += 1
            while len(self.attached) > self.max_attached:
                _, evicted = self.attached.popitem(last=False)
                evicted.close()
        else:
            self.attached.move_to_end(segment)
        return forest

    def detach(self, segment: str) -> None:
        """Drop (and close) one attachment, if present."""
        forest = self.attached.pop(segment, None)
        if forest is not None:
            forest.close()

    def close(self) -> None:
        """Close every attachment (worker exit)."""
        for forest in self.attached.values():
            forest.close()
        self.attached.clear()
        self.staged.clear()

    def collect_metrics(self, registry) -> None:
        """Sample attachment counters into an obs registry."""
        from repro.obs.catalog import family

        family(registry, "repro_par_shm_attaches_total").inc(self.attaches)
        family(registry, "repro_par_attached_segments").inc(len(self.attached))


def _worker_main(in_queue, reply, max_attached: int) -> None:
    """Worker-process loop: serve ``(task_id, op, payload)`` requests."""
    from repro import obs
    from repro.serve.bulk import EncodedBatch, _slice_encoded

    obs.reset()
    state = _WorkerState(max_attached)
    try:
        while True:
            message = in_queue.get()
            if message is None:
                return
            task_id, op, payload = message
            try:
                if op == "sweep":
                    segment, name, batch_id, start, stop, cube = payload
                    batch = state.staged.get(batch_id)
                    if batch is None:
                        raise ParError(f"stale staged batch {batch_id!r}")
                    if stop - start != batch.count:
                        batch = _slice_encoded(batch, start, stop)
                    result = state.forest(segment).sweep_encoded(
                        name, batch, cube=cube
                    )
                elif op == "stage":
                    batch_id, count, stride, var_bits, known_bits = payload
                    state.staged[batch_id] = EncodedBatch(
                        count, stride, var_bits, known_bits
                    )
                    while len(state.staged) > _MAX_STAGED:
                        state.staged.popitem(last=False)
                    result = True
                elif op == "drop":
                    state.staged.pop(payload, None)
                    result = True
                elif op == "count":
                    segment, names = payload
                    forest = state.forest(segment)
                    result = {name: forest.sat_count(name) for name in names}
                elif op == "attach":
                    result = state.forest(payload).functions
                elif op == "detach":
                    state.detach(payload)
                    result = True
                elif op == "metrics":
                    result = obs.snapshot()
                else:  # pragma: no cover - protocol misuse
                    raise ParError(f"unknown worker op {op!r}")
                reply.send((task_id, True, result))
            except BaseException as exc:  # noqa: BLE001 - reported to caller
                reply.send((task_id, False, f"{type(exc).__name__}: {exc}"))
    finally:
        state.close()


class ParallelPool:
    """A persistent worker pool sweeping shared forests in parallel.

    Parameters
    ----------
    workers:
        Worker process count; ``0`` sweeps inline in this process
        (default: ``min(4, cpu_count)``).
    max_attached:
        Per-worker LRU capacity of attached segments.
    timeout:
        Seconds to wait for a worker reply before declaring it dead.
    respawn:
        Whether dead workers are replaced (in-flight batches retry once).
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        max_attached: int = 8,
        timeout: float = 120.0,
        respawn: bool = True,
    ) -> None:
        """Spawn the crew (or configure the inline path for ``workers=0``)."""
        if workers is None:
            workers = min(4, os.cpu_count() or 1)
        if workers < 0:
            raise ParError("workers must be >= 0")
        self._crew: Optional[WorkerCrew] = None
        if workers > 0:
            self._crew = WorkerCrew(
                workers,
                _worker_main,
                args=(max_attached,),
                timeout=timeout,
                respawn=respawn,
                name="repro-par",
            )
        self._lock = threading.Lock()
        self._batch_seq = 0
        self.tasks_dispatched = 0
        self.batches = 0
        self.batch_retries = 0
        self._closed = False

        from repro import obs

        obs.track(self)

    # -- lifecycle -----------------------------------------------------------

    @property
    def workers(self) -> int:
        """Worker process count (0 when sweeping inline)."""
        return self._crew.workers if self._crew is not None else 0

    def close(self) -> None:
        """Stop the workers (idempotent); attached segments close with them."""
        self._closed = True
        if self._crew is not None:
            self._crew.close()

    def __enter__(self) -> "ParallelPool":
        """Context-manager entry: the pool itself."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Close the pool on scope exit."""
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    # -- plumbing ------------------------------------------------------------

    def _next_batch_id(self) -> int:
        with self._lock:
            self._batch_seq += 1
            return self._batch_seq

    def _count(self, counter: str, delta: int = 1) -> None:
        with self._lock:
            setattr(self, counter, getattr(self, counter) + delta)

    def warm(self, forest: ShmForest) -> List[str]:
        """Attach ``forest`` in every worker now; returns the root names.

        Without warming, each worker attaches lazily on its first sweep
        (correct, just off the first batch's latency path).
        """
        if self._crew is None:
            return forest.functions
        task_ids = self._crew.broadcast("attach", forest.name)
        return self._crew.collect_all(task_ids)[-1]

    def detach(self, forest: ShmForest) -> None:
        """Drop ``forest``'s attachment in every worker (best effort).

        Call before unlinking a segment so worker mappings do not keep
        its pages alive longer than needed.
        """
        if self._crew is None:
            return
        try:
            task_ids = self._crew.broadcast("detach", forest.name)
            self._crew.abandon(task_ids)
        except CrewError:
            pass

    # -- sweeps --------------------------------------------------------------

    def _chunk_spans(self, count: int) -> List[Tuple[int, int]]:
        """Contiguous lane ranges balancing ``count`` queries over the crew."""
        from repro.serve.bulk import DEFAULT_CHUNK

        workers = max(self.workers, 1)
        lanes = min(DEFAULT_CHUNK, max(_MIN_LANES, -(-count // workers)))
        return [
            (start, min(start + lanes, count))
            for start in range(0, count, lanes)
        ]

    def _sweep_inline(self, forest: ShmForest, names, encoded, cube: bool):
        from repro.serve.bulk import _slice_encoded

        spans = self._chunk_spans(encoded.count)
        results: Dict[str, List[bool]] = {name: [] for name in names}
        for start, stop in spans:
            part = encoded if stop - start == encoded.count else _slice_encoded(
                encoded, start, stop
            )
            for name in names:
                results[name].extend(
                    part.unpack(forest.sweep_encoded(name, part, cube=cube))
                )
        return results

    def _sweep(self, forest: ShmForest, names: Sequence[str], assignments, cube: bool):
        """Encode once, sweep every name, return ``{name: [bool, ...]}``."""
        from repro.serve.bulk import _encode, _slice_encoded

        names = list(names)
        support = None
        if not cube:
            support = frozenset().union(
                *(forest.support(name) for name in names)
            )
        else:
            for name in names:
                forest._root(name)
        encoded = _encode(forest, assignments, support, with_known=cube)
        self._count("batches")
        if encoded.count == 0:
            return {name: [] for name in names}
        if self._crew is None:
            return self._sweep_inline(forest, names, encoded, cube)
        spans = self._chunk_spans(encoded.count)

        def attempt():
            batch_id = self._next_batch_id()
            crew = self._crew
            stage_ids = crew.broadcast(
                "stage",
                (
                    batch_id,
                    encoded.count,
                    encoded.stride,
                    encoded.var_bits,
                    encoded.known_bits,
                ),
            )
            try:
                crew.collect_all(stage_ids)
                task_ids = [
                    crew.submit(
                        "sweep",
                        (forest.name, name, batch_id, start, stop, cube),
                    )
                    for name in names
                    for start, stop in spans
                ]
                self._count("tasks_dispatched", len(task_ids))
                raw = crew.collect_all(task_ids)
            finally:
                try:
                    crew.abandon(crew.broadcast("drop", batch_id))
                except CrewError:
                    pass
            results: Dict[str, List[bool]] = {}
            position = 0
            for name in names:
                answers: List[bool] = []
                for start, stop in spans:
                    part = (
                        encoded
                        if stop - start == encoded.count
                        else _slice_encoded(encoded, start, stop)
                    )
                    answers.extend(part.unpack(raw[position]))
                    position += 1
                results[name] = answers
            return results

        try:
            return attempt()
        except WorkerRestarted:
            # The dead worker took its staged batch with it; re-stage
            # under a fresh id and retry the whole batch once.
            self._count("batch_retries")
            return attempt()

    def evaluate_batch(self, forest: ShmForest, name: str, assignments) -> List[bool]:
        """Evaluate one named function at every assignment, in order.

        Same input forms and error contract as
        :meth:`~repro.api.base.FunctionBase.evaluate_batch`.
        """
        return self._sweep(forest, [name], assignments, cube=False)[name]

    def evaluate_many(
        self, forest: ShmForest, names: Iterable[str], assignments
    ) -> Dict[str, List[bool]]:
        """Evaluate several functions against one shared batch encoding.

        Assignments must cover the *union* of the named functions'
        supports (the batch is encoded once for all of them).
        """
        return self._sweep(forest, list(names), assignments, cube=False)

    def satisfiable_batch(self, forest: ShmForest, name: str, assignments) -> List[bool]:
        """For each partial assignment: is ``name ∧ cube`` satisfiable?"""
        return self._sweep(forest, [name], assignments, cube=True)[name]

    def sat_count(
        self, forest: ShmForest, names: Optional[Iterable[str]] = None
    ) -> Dict[str, int]:
        """Satisfying-assignment counts, one bottom-up pass per worker.

        ``names`` defaults to every stored root; the names are bucketed
        round-robin across the crew so distinct functions count
        concurrently (the per-slot memo pass is shared within a worker).
        """
        names = list(names) if names is not None else forest.functions
        for name in names:
            forest._root(name)
        if not names:
            return {}
        if self._crew is None:
            return {name: forest.sat_count(name) for name in names}

        def attempt():
            crew = self._crew
            buckets: List[List[str]] = [[] for _ in range(crew.workers)]
            for i, name in enumerate(names):
                buckets[i % len(buckets)].append(name)
            task_ids = [
                crew.submit("count", (forest.name, bucket), worker=index)
                for index, bucket in enumerate(buckets)
                if bucket
            ]
            self._count("tasks_dispatched", len(task_ids))
            merged: Dict[str, int] = {}
            for reply in crew.collect_all(task_ids):
                merged.update(reply)
            return {name: merged[name] for name in names}

        try:
            return attempt()
        except WorkerRestarted:
            self._count("batch_retries")
            return attempt()

    # -- observability -------------------------------------------------------

    @property
    def worker_restarts(self) -> int:
        """Workers respawned after dying mid-task (0 inline)."""
        return self._crew.worker_restarts if self._crew is not None else 0

    def metric_snapshots(self) -> List[dict]:
        """Metrics snapshots of every worker process (empty inline)."""
        if self._crew is None or self._closed:
            return []
        try:
            task_ids = self._crew.broadcast("metrics")
            return self._crew.collect_all(task_ids)
        except CrewError:
            return []

    def collect_metrics(self, registry) -> None:
        """Sample dispatcher counters into an obs registry."""
        from repro.obs.catalog import family

        family(registry, "repro_par_tasks_total").inc(self.tasks_dispatched)
        family(registry, "repro_par_batches_total").inc(self.batches)
        family(registry, "repro_par_batch_retries_total").inc(self.batch_retries)
        family(registry, "repro_par_worker_restarts_total").inc(
            self.worker_restarts
        )

    def stats(self) -> dict:
        """Dispatcher counters (dispatch volume, retries, restarts)."""
        return {
            "workers": self.workers,
            "tasks_dispatched": self.tasks_dispatched,
            "batches": self.batches,
            "batch_retries": self.batch_retries,
            "worker_restarts": self.worker_restarts,
        }
