"""Read-only shared-memory forests: freeze once, attach from any process.

A :class:`ShmForest` is a manager's forest flattened into one
``multiprocessing.shared_memory`` segment: a small JSON header (backend
kind, generation number, variable names, CVO order, named signed root
references and per-root supports) followed by four little-endian int64
arrays — ``pv``/``sv``/``t``/``f``, one slot per node.  The layout is
produced by :meth:`~repro.api.base.DDManager.freeze_export` (nodes in a
global topological order, parents strictly before children) so a frozen
forest supports the levelized cohort sweeps of :mod:`repro.serve.bulk`
and an exact ``sat_count`` directly on the attached arrays — child
processes :meth:`ShmForest.attach` the segment **zero-copy**: the kernel
maps the same physical pages into every worker, so memory per added
worker is O(1) regardless of forest size.

Array coding (slots 0 and 1 are reserved; ``1`` denotes the sink):

* ``pv[i]`` — the node's primary variable index;
* ``sv[i]`` — the secondary variable index, or ``-1`` for a
  single-variable test (literal / Shannon node);
* ``t[i]`` / ``f[i]`` — signed child references for the branch where
  the node's test holds / fails: ``abs(ref)`` is the child slot
  (``1`` = sink), a negative sign marks a complemented edge.

Forests frozen from chain-reduced managers add a fifth array ``bot``
behind the ``"chain"`` meta flag: ``bot[i] >= 0`` marks a parity-span
node whose partner variables are the contiguous order-position run
from ``sv[i]`` down to ``bot[i]`` (the node tests the parity of
``pv`` plus the partners; ``-1`` everywhere else).  Plain freezes
keep the original four-array layout, so segments written by older
code — and by chain-free managers — attach unchanged.

Lifecycle: the freezing process *owns* the segment and must eventually
:meth:`~ShmForest.unlink` it (attachers only :meth:`~ShmForest.close`).
A module :mod:`atexit` hook unlinks every segment still owned by this
process, so crashes of well-behaved programs do not leak ``/dev/shm``
entries; :func:`active_segments` lists this package's segments for leak
checks.
"""

from __future__ import annotations

import atexit
import json
import os
import secrets
import struct
import threading
import weakref
from array import array
from typing import Dict, Iterator, List, Mapping, Optional, Tuple, Union

from repro.core.exceptions import BBDDError, VariableError

try:  # pragma: no cover - exercised implicitly on import
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - platforms without shm support
    _shared_memory = None


class ParError(BBDDError):
    """A shared-memory / parallel-sweep failure (freeze, attach, lifecycle)."""


#: Prefix of every shared-memory segment this package creates.
SEGMENT_PREFIX = "repro-par-"

_MAGIC = b"RPARFRZ1"
_HEADER = struct.Struct("<8sQQ")  # magic, meta byte length, node slots

#: Live forests of this process (attached or owned), for the exit hook.
_LIVE: "weakref.WeakSet[ShmForest]" = weakref.WeakSet()

_SEGMENT_COUNTER = 0


def shm_available() -> bool:
    """True when ``multiprocessing.shared_memory`` works on this platform."""
    return _shared_memory is not None


def active_segments() -> List[str]:
    """Names of this package's segments currently present in ``/dev/shm``.

    POSIX only (returns ``[]`` where ``/dev/shm`` does not exist); used
    by the leak tests and by operators checking for orphaned segments.
    """
    try:
        entries = os.listdir("/dev/shm")
    except OSError:
        return []
    return sorted(e for e in entries if e.startswith(SEGMENT_PREFIX))


def _new_segment_name(generation: int) -> str:
    """A collision-resistant segment name (pid + counter + random token)."""
    global _SEGMENT_COUNTER
    _SEGMENT_COUNTER += 1
    return (
        f"{SEGMENT_PREFIX}{os.getpid()}-{_SEGMENT_COUNTER}-"
        f"{secrets.token_hex(4)}-g{generation}"
    )


def _align8(offset: int) -> int:
    """Round ``offset`` up to the next multiple of eight."""
    return (offset + 7) & ~7


_TRACKER_LOCK = threading.Lock()


def _attach_untracked(name: str):
    """Open an existing segment without resource-tracker registration.

    ``SharedMemory(name=...)`` registers attaches with the tracker just
    like owners (bpo-39959 / Python < 3.13): under ``spawn`` a worker
    exiting would then warn about — and unlink — segments it merely
    attached, and under ``fork`` (one tracker shared by the whole
    process tree) an attach-side *unregister* would instead erase the
    owner's registration.  Suppressing registration during the open is
    correct for both: only the freezing owner stays registered, which
    is exactly the crash safety net wanted.
    """
    from multiprocessing import resource_tracker

    with _TRACKER_LOCK:
        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return _shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


def _cleanup_at_exit() -> None:
    """Unlink every still-owned segment at interpreter exit."""
    for forest in list(_LIVE):
        try:
            if forest.owner and not forest._unlinked:
                forest.unlink()
            forest.close()
        except Exception:  # pragma: no cover - best-effort teardown
            pass


atexit.register(_cleanup_at_exit)


def _named_functions(manager, functions) -> List[Tuple[str, object]]:
    """Normalize the accepted forest shapes to ``[(name, edge)]``.

    Accepts a single function handle, a sequence of them, or a
    name-keyed mapping; anonymous roots are named ``f0``, ``f1``, ...
    Rejects empty forests, duplicate names and functions of a different
    manager.
    """
    from repro.api.base import FunctionBase

    if isinstance(functions, FunctionBase):
        pairs = [("f0", functions)]
    elif isinstance(functions, Mapping):
        pairs = list(functions.items())
    else:
        pairs = [(f"f{i}", f) for i, f in enumerate(functions)]
    if not pairs:
        raise ParError("cannot freeze an empty forest")
    named: List[Tuple[str, object]] = []
    seen = set()
    for name, f in pairs:
        name = str(name)
        if name in seen:
            raise ParError(f"duplicate function name {name!r} in forest")
        seen.add(name)
        if not isinstance(f, FunctionBase):
            raise ParError(
                f"forest entries must be function handles, got "
                f"{type(f).__name__} for {name!r}"
            )
        if f.manager is not manager:
            raise ParError(
                f"function {name!r} belongs to a different manager"
            )
        named.append((name, f.edge))
    return named


class ShmForest:
    """A read-only forest living in one shared-memory segment.

    Create with :meth:`freeze` (the owning process) or :meth:`attach`
    (workers).  The query surface mirrors the function handles —
    :meth:`evaluate_batch`, :meth:`satisfiable_batch`, :meth:`evaluate`,
    :meth:`sat_count` — but keyed by stored root *name*, and it runs
    entirely on the mapped arrays: no manager, no node objects, no
    copies.  Also poses as enough of a manager (``var_index`` /
    ``var_name`` / ``num_vars``) for the :mod:`repro.serve.bulk`
    encoders to resolve assignments against it directly.
    """

    def __init__(self, shm, owner: bool) -> None:
        """Wrap an open segment; internal — use :meth:`freeze`/:meth:`attach`."""
        self._shm = shm
        self.owner = owner
        self._unlinked = False
        self._closed = False
        self._views: List[memoryview] = []
        self._memos: Optional[List[int]] = None
        try:
            buf = shm.buf
            magic, meta_len, n = _HEADER.unpack_from(buf, 0)
            if magic != _MAGIC:
                raise ParError(
                    f"segment {shm.name!r} is not a frozen forest "
                    f"(bad magic {magic!r})"
                )
            meta = json.loads(bytes(buf[_HEADER.size:_HEADER.size + meta_len]))
            self._meta = meta
            self._n = n
            self._names: List[str] = list(meta["names"])
            self._order: List[int] = list(meta["order"])
            self._roots: Dict[str, int] = {
                name: int(ref) for name, ref in meta["roots"].items()
            }
            self._supports: Dict[str, frozenset] = {
                name: frozenset(vars_) for name, vars_ in meta["supports"].items()
            }
            self._index: Dict[str, int] = {
                name: i for i, name in enumerate(self._names)
            }
            self._positions: List[int] = [0] * len(self._order)
            for pos, var in enumerate(self._order):
                self._positions[var] = pos
            base = _align8(_HEADER.size + meta_len)
            span = 8 * n
            ncols = 5 if meta.get("chain") else 4
            arrays = []
            for k in range(ncols):
                view = memoryview(buf)[base + k * span: base + (k + 1) * span]
                arrays.append(view.cast("q"))
                self._views.append(view)
            self._views.extend(arrays)
            self._pv, self._sv, self._t, self._f = arrays[:4]
            self._bot = arrays[4] if ncols == 5 else None
        except ParError:
            self._release_views()
            shm.close()
            raise
        except Exception as exc:
            self._release_views()
            shm.close()
            raise ParError(
                f"segment {shm.name!r} does not hold a valid frozen forest: "
                f"{exc}"
            ) from exc
        _LIVE.add(self)

    # -- construction --------------------------------------------------------

    @classmethod
    def freeze(
        cls,
        manager,
        functions,
        *,
        generation: int = 0,
        name: Optional[str] = None,
    ) -> "ShmForest":
        """Flatten ``functions`` of ``manager`` into a new owned segment.

        ``functions`` is a function handle, a sequence of them, or a
        ``{name: function}`` mapping (names key the query surface).
        ``generation`` is stored verbatim — the hot-reload protocol of
        :class:`repro.serve.pool.ForestPool` bumps it per re-freeze so
        workers can tell segments of the same dump apart.  Backends
        without :meth:`~repro.api.base.DDManager.freeze_export` support
        (``batch_stream`` returning None) raise :class:`ParError` —
        callers fall back to the sequential in-process path.
        """
        if _shared_memory is None:
            raise ParError(
                "multiprocessing.shared_memory is unavailable on this "
                "platform; shared forests cannot be frozen"
            )
        named = _named_functions(manager, functions)
        export = manager.freeze_export(named)
        if export is None:
            raise ParError(
                f"backend {manager.backend!r} has no structural freeze "
                "export; use the sequential in-process batch path instead"
            )
        supports = {
            fname: sorted(manager.support_edge(edge)) for fname, edge in named
        }
        columns = [export["pv"], export["sv"], export["t"], export["f"]]
        meta_dict = {
            "kind": export["kind"],
            "generation": generation,
            "names": list(manager.var_names),
            "order": list(manager.order.order),
            "roots": export["roots"],
            "supports": supports,
        }
        if export.get("bot") is not None:
            # Chain-reduced forest: the span column rides behind a meta
            # flag so plain segments keep the attachable 4-array layout.
            meta_dict["chain"] = True
            columns.append(export["bot"])
        meta = json.dumps(meta_dict, separators=(",", ":")).encode("utf-8")
        n = len(export["pv"])
        base = _align8(_HEADER.size + len(meta))
        total = base + len(columns) * 8 * n
        shm = _shared_memory.SharedMemory(
            create=True,
            size=total,
            name=name or _new_segment_name(generation),
        )
        try:
            buf = shm.buf
            _HEADER.pack_into(buf, 0, _MAGIC, len(meta), n)
            buf[_HEADER.size:_HEADER.size + len(meta)] = meta
            offset = base
            for column in columns:
                raw = array("q", column).tobytes()
                buf[offset:offset + len(raw)] = raw
                offset += 8 * n
        except Exception:
            shm.close()
            shm.unlink()
            raise
        return cls(shm, owner=True)

    @classmethod
    def attach(cls, name: str) -> "ShmForest":
        """Attach an existing segment by name (zero-copy, non-owning)."""
        if _shared_memory is None:
            raise ParError(
                "multiprocessing.shared_memory is unavailable on this "
                "platform; shared forests cannot be attached"
            )
        try:
            shm = _attach_untracked(name)
        except FileNotFoundError:
            raise ParError(
                f"no shared forest segment named {name!r} (unlinked, or "
                "never frozen)"
            ) from None
        return cls(shm, owner=False)

    # -- metadata ------------------------------------------------------------

    @property
    def name(self) -> str:
        """The shared-memory segment name (what :meth:`attach` takes)."""
        return self._shm.name

    @property
    def nbytes(self) -> int:
        """Allocated size of the segment in bytes."""
        return self._shm.size

    @property
    def kind(self) -> str:
        """Backend registry name the forest was frozen from."""
        return self._meta["kind"]

    @property
    def generation(self) -> int:
        """The generation number stored at freeze time (hot reloads)."""
        return int(self._meta["generation"])

    @property
    def node_count(self) -> int:
        """Stored node slots (reserved sink slots excluded)."""
        return self._n - 2

    @property
    def functions(self) -> List[str]:
        """The stored root names, in insertion order."""
        return list(self._roots)

    @property
    def num_vars(self) -> int:
        """Number of variables of the frozen manager."""
        return len(self._names)

    def var_index(self, var: Union[int, str]) -> int:
        """Resolve a variable name or index (the manager contract)."""
        if isinstance(var, str):
            index = self._index.get(var)
            if index is None:
                raise VariableError(f"unknown variable {var!r}")
            return index
        if isinstance(var, int) and not isinstance(var, bool):
            if 0 <= var < len(self._names):
                return var
            raise VariableError(f"variable index {var} out of range")
        raise VariableError(f"variable key must be a name or index, got {var!r}")

    def var_name(self, index: int) -> str:
        """The name of variable ``index``."""
        if 0 <= index < len(self._names):
            return self._names[index]
        raise VariableError(f"variable index {index} out of range")

    def support(self, name: str) -> frozenset:
        """Variable indices function ``name`` depends on."""
        self._check_open()
        self._root(name)
        return self._supports.get(name, frozenset())

    def _root(self, name: str) -> int:
        """The signed root reference of ``name`` (``±1`` = constant)."""
        ref = self._roots.get(name)
        if ref is None:
            stored = ", ".join(sorted(self._roots)) or "<none>"
            raise ParError(
                f"forest has no function named {name!r} (stored: {stored})"
            )
        return ref

    def _check_open(self) -> None:
        if self._closed:
            raise ParError(
                f"shared forest {getattr(self, '_name_hint', '')!s} is "
                "closed (or unlinked); re-attach before querying"
            )

    # -- sweeps --------------------------------------------------------------

    def _items(self) -> Iterator[tuple]:
        """All stored nodes, parents-first, as cohort-sweep items.

        The freeze export guarantees a global topological order (slot
        index ascending = parents before children), so one pass serves
        any root; nodes unreachable from the swept root simply carry no
        cohort and cost one dictionary miss each.  Span slots
        (``bot[i] >= 0``) put the partner-variable tuple in the item's
        ``sv`` slot, the convention of :mod:`repro.serve.bulk`.
        """
        pv, sv, t, f = self._pv, self._sv, self._t, self._f
        bot = self._bot
        order = self._order
        pos = self._positions
        for i in range(2, self._n):
            ti = t[i]
            fi = f[i]
            ta = -ti if ti < 0 else ti
            fa = -fi if fi < 0 else fi
            svi = sv[i]
            if svi < 0:
                svv = None
            elif bot is not None and bot[i] >= 0:
                svv = tuple(
                    order[p] for p in range(pos[svi], pos[bot[i]] + 1)
                )
            else:
                svv = svi
            yield (
                i,
                pv[i],
                svv,
                None if ta == 1 else ta,
                ti < 0,
                None if ta == 1 else pv[ta],
                None if fa == 1 else fa,
                fi < 0,
                None if fa == 1 else pv[fa],
            )

    def sweep_encoded(self, name: str, batch, cube: bool = False) -> int:
        """One cohort sweep of an :class:`~repro.serve.bulk.EncodedBatch`.

        Returns the raw ``sat_even`` bitset (one answer bit per lane) —
        the worker hot path: callers slice, sweep and OR lane ranges
        without materializing bool lists per chunk.
        """
        from repro.serve.bulk import cohort_sweep, cube_sweep

        self._check_open()
        ref = self._root(name)
        if ref == 1:
            return batch.full
        if ref == -1:
            return 0
        root = -ref if ref < 0 else ref
        if cube:
            sat_even, _ = cube_sweep(
                root,
                ref < 0,
                self._items(),
                batch.var_bits,
                batch.known_bits or {},
                batch.full,
            )
        else:
            sat_even, _ = cohort_sweep(
                root, ref < 0, self._items(), batch.var_bits, batch.full
            )
        return sat_even

    # -- public queries ------------------------------------------------------

    def evaluate_batch(self, name: str, assignments, chunk: Optional[int] = None):
        """Evaluate function ``name`` at every assignment, in order.

        Accepts the same input forms as
        :meth:`~repro.api.base.FunctionBase.evaluate_batch` (mappings
        covering the support, or a
        :class:`~repro.serve.bulk.ColumnBatch`).
        """
        from repro.serve.bulk import DEFAULT_CHUNK, _encode, _slice_encoded

        self._check_open()
        support = self.support(name)
        encoded = _encode(self, assignments, support, with_known=False)
        if encoded.count == 0:
            return []
        chunk = chunk or DEFAULT_CHUNK
        results: List[bool] = []
        for start in range(0, encoded.count, chunk):
            stop = min(start + chunk, encoded.count)
            part = encoded if stop - start == encoded.count else _slice_encoded(
                encoded, start, stop
            )
            results.extend(part.unpack(self.sweep_encoded(name, part)))
        return results

    def satisfiable_batch(self, name: str, assignments, chunk: Optional[int] = None):
        """For each partial assignment: is ``name ∧ cube`` satisfiable?"""
        from repro.serve.bulk import DEFAULT_CHUNK, _encode, _slice_encoded

        self._check_open()
        self._root(name)
        encoded = _encode(self, assignments, None, with_known=True)
        if encoded.count == 0:
            return []
        chunk = chunk or DEFAULT_CHUNK
        results: List[bool] = []
        for start in range(0, encoded.count, chunk):
            stop = min(start + chunk, encoded.count)
            part = encoded if stop - start == encoded.count else _slice_encoded(
                encoded, start, stop
            )
            results.extend(part.unpack(self.sweep_encoded(name, part, cube=True)))
        return results

    def evaluate(self, name: str, assignment: Mapping) -> bool:
        """Evaluate function ``name`` at one assignment mapping."""
        return self.evaluate_batch(name, [assignment])[0]

    # -- sat counting --------------------------------------------------------

    def _sat_memos(self) -> List[int]:
        """Per-slot satisfying-assignment counts (computed once, lazily).

        ``memo[i]`` counts assignments of the variables at CVO positions
        ``>= position(pv[i])`` satisfying slot ``i``'s regular function.
        Children always sit at higher slot indices, so one descending
        pass is a complete bottom-up evaluation of the whole store.
        """
        if self._memos is not None:
            return self._memos
        pv, sv, t, f = self._pv, self._sv, self._t, self._f
        bot = self._bot
        pos = self._positions
        n_vars = len(self._names)
        memo = [0] * self._n
        for i in range(self._n - 1, 1, -1):
            p = pos[pv[i]]
            svi = sv[i]
            if svi < 0:
                base = p + 1
            elif bot is not None and bot[i] >= 0:
                # Parity span: every span variable is consumed here (the
                # children live strictly below bot), one of them is
                # fixed by the branch parity and the rest — plus any
                # gap above the partner run — are free; the net factor
                # is 2^(pos(bot) - p), the final shift below.
                base = pos[bot[i]] + 1
            else:
                base = pos[svi]
            total = 0
            for ref in (t[i], f[i]):
                child = -ref if ref < 0 else ref
                if child == 1:
                    sub = 0 if ref < 0 else 1 << (n_vars - base)
                else:
                    q = pos[pv[child]]
                    sub = memo[child]
                    if ref < 0:
                        sub = (1 << (n_vars - q)) - sub
                    sub <<= q - base
                total += sub
            memo[i] = total << (base - (p + 1))
        self._memos = memo
        return memo

    def sat_count(self, name: str) -> int:
        """Satisfying assignments of ``name`` over all variables."""
        self._check_open()
        ref = self._root(name)
        if ref == 1:
            return 1 << len(self._names)
        if ref == -1:
            return 0
        memo = self._sat_memos()
        root = -ref if ref < 0 else ref
        p = self._positions[self._pv[root]]
        count = memo[root]
        if ref < 0:
            count = (1 << (len(self._names) - p)) - count
        return count << p

    # -- weighted counting ---------------------------------------------------

    def _weighted(self, name: str, w1, w0, one, zero):
        """One zero-copy mass sweep straight off the segment arrays."""
        from repro.wmc import _count_sweeps
        from repro.wmc.sweep import mass_sweep, total_mass

        self._check_open()
        ref = self._root(name)
        _count_sweeps()
        if ref == 1:
            return total_mass(w1, w0, one)
        if ref == -1:
            return zero
        root = -ref if ref < 0 else ref
        return mass_sweep(
            root,
            ref < 0,
            self._items(),
            order=self._order,
            positions=self._positions,
            w1=w1,
            w0=w0,
            one=one,
            zero=zero,
        )

    def weighted_count(self, name: str, weights=None, *, exact: bool = True):
        """Weighted model count of function ``name`` (see :mod:`repro.wmc`).

        Runs the levelized mass sweep directly over the shared arrays —
        no manager, no decode, safe from any attached process.
        """
        from repro.wmc.sweep import resolve_weights

        w1, w0, one, zero = resolve_weights(
            self, weights, probabilities=False, exact=exact
        )
        return self._weighted(name, w1, w0, one, zero)

    def p_one(self, name: str, weights=None, *, exact: bool = True):
        """``p(name = 1)`` under independent per-variable probabilities."""
        from repro.wmc.sweep import resolve_weights

        w1, w0, one, zero = resolve_weights(
            self, weights, probabilities=True, exact=exact
        )
        return self._weighted(name, w1, w0, one, zero)

    def marginals(self, name: str, weights=None, variables=None, *, exact: bool = True):
        """Posterior marginals ``p(v = 1 | name = 1)`` per support variable."""
        from repro.wmc.sweep import WmcError, resolve_weights

        w1, w0, one, zero = resolve_weights(
            self, weights, probabilities=True, exact=exact
        )
        denominator = self._weighted(name, w1, w0, one, zero)
        if not denominator:
            raise WmcError(
                "marginals are undefined: p(f = 1) is 0 under these weights"
            )
        if variables is None:
            indices = sorted(self.support(name))
        elif isinstance(variables, (str, int)):
            indices = [self.var_index(variables)]
        else:
            indices = [self.var_index(v) for v in variables]
        result = {}
        for index in indices:
            held = w0[index]
            w0[index] = zero
            joint = self._weighted(name, w1, w0, one, zero)
            w0[index] = held
            result[self.var_name(index)] = joint / denominator
        return result

    # -- lifecycle -----------------------------------------------------------

    def _release_views(self) -> None:
        for view in reversed(self._views):
            try:
                view.release()
            except Exception:  # pragma: no cover - already released
                pass
        self._views = []

    def close(self) -> None:
        """Release this process's mapping (idempotent).

        Attachers call only this; the owner additionally calls
        :meth:`unlink` (before or after — POSIX keeps the segment's
        pages alive while any mapping remains).
        """
        if self._closed:
            return
        self._closed = True
        self._name_hint = self._shm.name
        self._pv = self._sv = self._t = self._f = self._bot = None
        self._memos = None
        self._release_views()
        try:
            self._shm.close()
        except Exception:  # pragma: no cover - interpreter teardown
            pass

    def unlink(self) -> None:
        """Remove the segment from the system (owner's responsibility).

        Attached mappings elsewhere stay valid until they close; new
        :meth:`attach` calls fail afterwards.  Raises :class:`ParError`
        on a second unlink.
        """
        if self._unlinked:
            raise ParError(
                f"shared forest segment {self._shm.name!r} is already unlinked"
            )
        self._unlinked = True
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - externally removed
            pass

    def __enter__(self) -> "ShmForest":
        """Context-manager entry: the forest itself."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Unlink (owner, if not yet) and close on scope exit."""
        if self.owner and not self._unlinked:
            self.unlink()
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            if self.owner and not self._unlinked:
                self.unlink()
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:
        """Segment name, backend kind and sizes, for debugging."""
        state = "closed" if self._closed else f"{self.node_count} nodes"
        return (
            f"<ShmForest {self._shm.name} kind={self._meta['kind']} "
            f"{state} {'owner' if self.owner else 'attached'}>"
        )
