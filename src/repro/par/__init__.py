"""repro.par — shared-memory forests and multi-core parallel sweeps.

The parallel-execution layer on top of the flat node store:

* :mod:`repro.par.shm` — :class:`ShmForest`: a manager's forest frozen
  into one ``multiprocessing.shared_memory`` segment, attached
  zero-copy by any number of processes, queryable (batch evaluation,
  cube satisfiability, exact sat-count) directly on the mapped arrays;
* :mod:`repro.par.dispatch` — :class:`WorkerCrew`: persistent worker
  processes with death detection, respawn and in-flight-task failure;
* :mod:`repro.par.pool` — :class:`ParallelPool`: query cohorts split
  across the crew, one staged encoding per batch, results reassembled
  in order.

The one-call surface (used by
``f.evaluate_batch(assignments, workers=N)``):

>>> import repro
>>> manager = repro.open("bbdd", vars=["a", "b", "c"])
>>> f = manager.add_expr("a & b | c")
>>> queries = [{"a": 1, "b": 1, "c": 0}, {"a": 0, "b": 0, "c": 0}]
>>> parallel_evaluate_batch(f, queries, workers=2)
[True, False]

Backends without a structural freeze export (third-party managers whose
``batch_stream`` returns None) fall back to the sequential in-process
path automatically — same results, no shared memory.
"""

from __future__ import annotations

import atexit
import threading
from typing import Dict, List, Mapping, Optional

from repro.par.dispatch import CrewError, WorkerCrew, WorkerRestarted
from repro.par.pool import ParallelPool
from repro.par.shm import (
    SEGMENT_PREFIX,
    ParError,
    ShmForest,
    active_segments,
    shm_available,
)

__all__ = [
    "SEGMENT_PREFIX",
    "CrewError",
    "ParError",
    "ParallelPool",
    "ShmForest",
    "WorkerCrew",
    "WorkerRestarted",
    "active_segments",
    "default_pool",
    "freeze",
    "parallel_evaluate_batch",
    "parallel_sat_count",
    "parallel_satisfiable_batch",
    "shm_available",
    "shutdown_default_pool",
    "try_freeze",
]

_POOL_LOCK = threading.Lock()
_DEFAULT_POOL: Optional[ParallelPool] = None


def freeze(manager, functions, **kwargs) -> ShmForest:
    """Freeze ``functions`` of ``manager`` into a shared segment.

    Shorthand for :meth:`ShmForest.freeze`; the caller owns the result
    and must eventually :meth:`~ShmForest.unlink` it (the ``with``
    statement does both).
    """
    return ShmForest.freeze(manager, functions, **kwargs)


def try_freeze(manager, functions, **kwargs) -> Optional[ShmForest]:
    """Like :func:`freeze`, but ``None`` where freezing cannot work.

    Covers both the platform axis (no ``multiprocessing.shared_memory``)
    and the backend axis (no structural freeze export) — the callers'
    signal to take the sequential in-process path.
    """
    if not shm_available():
        return None
    try:
        return ShmForest.freeze(manager, functions, **kwargs)
    except ParError:
        return None


def default_pool(workers: Optional[int] = None) -> ParallelPool:
    """The process-wide :class:`ParallelPool`, created (or grown) on demand.

    A ``workers`` request larger than the current pool replaces it with
    a bigger one; the pool is shut down automatically at interpreter
    exit (or explicitly via :func:`shutdown_default_pool`).
    """
    global _DEFAULT_POOL
    with _POOL_LOCK:
        pool = _DEFAULT_POOL
        if pool is not None and not pool._closed and (
            workers is None or pool.workers >= max(workers, 1)
        ):
            return pool
        if pool is not None:
            pool.close()
        _DEFAULT_POOL = ParallelPool(workers=workers)
        return _DEFAULT_POOL


def shutdown_default_pool() -> None:
    """Close the process-wide pool (idempotent; re-created on next use)."""
    global _DEFAULT_POOL
    with _POOL_LOCK:
        if _DEFAULT_POOL is not None:
            _DEFAULT_POOL.close()
            _DEFAULT_POOL = None


atexit.register(shutdown_default_pool)


def _with_frozen(f, run_parallel, run_sequential, workers: Optional[int]):
    """Freeze ``f``, run the parallel path, always clean the segment up."""
    forest = try_freeze(f.manager, {"f": f})
    if forest is None:
        return run_sequential()
    pool = default_pool(workers)
    try:
        return run_parallel(pool, forest)
    finally:
        pool.detach(forest)
        try:
            forest.unlink()
        except ParError:
            pass
        forest.close()


def parallel_evaluate_batch(f, assignments, workers: Optional[int] = None) -> List[bool]:
    """Evaluate ``f`` at every assignment across the worker pool.

    One-shot convenience: freezes the function's forest, sweeps the
    batch across :func:`default_pool`, unlinks the segment.  Callers
    issuing many batches against the same forest should
    :func:`freeze` once and keep a :class:`ParallelPool` instead.
    Backends without a freeze export fall back to the sequential
    :meth:`~repro.api.base.FunctionBase.evaluate_batch`.
    """
    return _with_frozen(
        f,
        lambda pool, forest: pool.evaluate_batch(forest, "f", assignments),
        lambda: f.evaluate_batch(assignments),
        workers,
    )


def parallel_satisfiable_batch(f, assignments, workers: Optional[int] = None) -> List[bool]:
    """Cube satisfiability of ``f`` for every partial assignment.

    The parallel counterpart of
    :meth:`~repro.api.base.FunctionBase.satisfiable_batch`, with the
    same freeze / fallback behaviour as :func:`parallel_evaluate_batch`.
    """
    return _with_frozen(
        f,
        lambda pool, forest: pool.satisfiable_batch(forest, "f", assignments),
        lambda: f.satisfiable_batch(assignments),
        workers,
    )


def parallel_sat_count(
    functions: Mapping, workers: Optional[int] = None
) -> Dict[str, int]:
    """Satisfying-assignment counts of a named forest, in parallel.

    ``functions`` is a ``{name: function}`` mapping over one manager;
    the forest is frozen once and the names counted concurrently across
    the pool.  Falls back to per-function
    :meth:`~repro.api.base.FunctionBase.sat_count` without a freeze
    export.
    """
    if not functions:
        return {}
    manager = next(iter(functions.values())).manager
    forest = try_freeze(manager, functions)
    if forest is None:
        return {name: f.sat_count() for name, f in functions.items()}
    pool = default_pool(workers)
    try:
        return pool.sat_count(forest, list(functions))
    finally:
        pool.detach(forest)
        try:
            forest.unlink()
        except ParError:
            pass
        forest.close()
