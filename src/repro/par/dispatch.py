"""A persistent worker-process crew with death detection and respawn.

The dispatch layer shared by :class:`repro.par.pool.ParallelPool` and
:class:`repro.serve.pool.ForestPool`: N daemon processes, one request
queue per worker (so work can be *targeted* — a forest attached by
worker 3 is queried on worker 3) and one reply **pipe** per worker,
multiplexed with :func:`multiprocessing.connection.wait` by whichever
caller thread is currently draining.

The failure mode this exists for: a worker that dies mid-task (OOM
killer, segfault, ``kill -9``) used to leave its callers blocked on the
reply channel forever.  Every empty poll interval checks worker
liveness; a dead worker fails all of its in-flight tasks with
:class:`WorkerRestarted` (so callers can re-submit idempotent work), is
respawned, and the restart is counted for the ``worker_restarts``
observability surface.  Replies deliberately do **not** share a queue:
a ``multiprocessing.Queue`` shared by several writers serializes sends
through one cross-process lock, and a worker killed while holding it
would silence every *other* worker too.  With one single-writer pipe
per worker, a kill can only sever that worker's own channel (the parent
sees EOF and reaps it), never its siblings'.
"""

from __future__ import annotations

import itertools
import multiprocessing
import multiprocessing.connection
import threading
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.exceptions import BBDDError


class CrewError(BBDDError):
    """A worker-crew failure (timeout, worker exception, closed crew)."""


class WorkerRestarted(CrewError):
    """A worker died mid-task and was respawned; re-submit the work."""


#: Poll interval while waiting for replies (also the liveness cadence).
_POLL = 0.5

#: Sentinel payload parked for tasks lost to a worker death.
_RESTART = "__worker_restarted__"


class WorkerCrew:
    """N persistent worker processes with liveness supervision.

    ``main`` is the worker entry point, called as
    ``main(in_queue, reply, *args)``; it must loop reading
    ``(task_id, op, payload)`` triples from ``in_queue`` (``None`` means
    exit) and ``reply.send((task_id, ok, payload))`` for each.
    Submission is thread-safe; any number of caller threads may be
    blocked in :meth:`collect` concurrently — one of them multiplexes
    the reply pipes and parks results for the others.
    """

    def __init__(
        self,
        workers: int,
        main: Callable,
        args: Tuple = (),
        timeout: float = 120.0,
        respawn: bool = True,
        name: str = "repro-worker",
    ) -> None:
        """Spawn ``workers`` daemon processes running ``main(*queues, *args)``."""
        if workers < 1:
            raise CrewError("a worker crew needs at least one worker")
        self.timeout = timeout
        self.respawn = respawn
        self.worker_restarts = 0
        self._main = main
        self._args = args
        self._name = name
        self._ctx = multiprocessing.get_context()
        self._in_queues = [self._ctx.Queue() for _ in range(workers)]
        self._replies: List[Optional[object]] = [None] * workers
        self._processes: List[multiprocessing.Process] = [
            self._spawn(i) for i in range(workers)
        ]
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._draining = False
        self._waiting: Dict[int, int] = {}  # task id -> worker index
        self._results: Dict[int, Tuple[bool, object]] = {}
        self._task_ids = itertools.count()
        self._rr = itertools.count()
        self._reaped: set = set()
        self._closed = False

    @property
    def workers(self) -> int:
        """Number of worker slots (constant across respawns)."""
        return len(self._processes)

    @property
    def processes(self) -> List[multiprocessing.Process]:
        """The live process handles (test hooks kill these)."""
        return list(self._processes)

    def _spawn(self, index: int) -> multiprocessing.Process:
        reader, writer = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=self._main,
            args=(self._in_queues[index], writer) + self._args,
            daemon=True,
            name=f"{self._name}-{index}",
        )
        process.start()
        # Close the parent's copy of the write end: the worker must be
        # the *only* writer, so its death EOFs the pipe (even a partial
        # message then raises in recv instead of blocking forever).
        writer.close()
        self._replies[index] = reader
        return process

    # -- submission ----------------------------------------------------------

    def submit(self, op: str, payload=None, worker: Optional[int] = None) -> int:
        """Queue one task; returns its id for :meth:`collect`.

        ``worker`` targets a specific worker index; by default tasks
        round-robin across the crew.
        """
        with self._lock:
            if self._closed:
                raise CrewError("worker crew is closed")
            if worker is None:
                worker = next(self._rr) % len(self._processes)
            task_id = next(self._task_ids)
            self._waiting[task_id] = worker
            queue = self._in_queues[worker]
        queue.put((task_id, op, payload))
        return task_id

    def broadcast(self, op: str, payload=None) -> List[int]:
        """Queue one task per worker; returns all task ids."""
        return [
            self.submit(op, payload, worker=i)
            for i in range(len(self._processes))
        ]

    # -- collection ----------------------------------------------------------

    def _reap_locked(self) -> None:
        """Fail in-flight tasks of dead workers; respawn them (lock held)."""
        for index, process in enumerate(self._processes):
            if process.is_alive():
                continue
            dead = [t for t, w in self._waiting.items() if w == index]
            for task_id in dead:
                del self._waiting[task_id]
                self._results[task_id] = (False, _RESTART)
            if process not in self._reaped:
                self.worker_restarts += 1
                if self.respawn:
                    # A worker killed mid-``Queue.get`` can die holding
                    # the queue's reader lock, which would deadlock its
                    # replacement; the respawn gets a fresh queue (any
                    # messages on the old one belonged to the tasks just
                    # failed above) and a fresh reply pipe.
                    reader = self._replies[index]
                    if reader is not None:
                        self._replies[index] = None
                        reader.close()
                    self._in_queues[index] = self._ctx.Queue()
                    self._processes[index] = self._spawn(index)
                else:
                    self._reaped.add(process)
            if dead:
                self._cond.notify_all()

    def _drain_once(self, wait: float) -> None:
        """Pull replies for up to ``wait`` seconds (lock held on entry/exit)."""
        readers = [r for r in self._replies if r is not None]
        self._draining = True
        self._cond.release()
        received = []
        severed = []
        try:
            if readers:
                try:
                    ready = multiprocessing.connection.wait(readers, wait)
                except OSError:  # pragma: no cover - torn-down handle
                    ready = []
                for reader in ready:
                    try:
                        received.append(reader.recv())
                    except (EOFError, OSError):
                        # The sole writer died (possibly mid-message):
                        # the channel is gone, the reap below respawns.
                        severed.append(reader)
            else:  # pragma: no cover - every worker dead, respawn off
                time.sleep(wait)
        finally:
            self._cond.acquire()
            self._draining = False
        for reader in severed:
            for index, open_reader in enumerate(self._replies):
                if open_reader is reader:
                    self._replies[index] = None
                    reader.close()
        for reply in received:
            task_id, ok, payload = reply
            if task_id in self._waiting:
                del self._waiting[task_id]
                self._results[task_id] = (ok, payload)
            # else: a reply for an abandoned/reaped task — drop it.
        if not received:
            self._reap_locked()
        self._cond.notify_all()

    def collect(self, task_id: int):
        """Block until ``task_id`` replies; return its payload.

        Raises :class:`WorkerRestarted` when the executing worker died
        (after respawning it), :class:`CrewError` on worker exceptions
        or after ``timeout`` seconds without an answer.
        """
        deadline = time.monotonic() + self.timeout
        with self._cond:
            while True:
                if task_id in self._results:
                    ok, payload = self._results.pop(task_id)
                    if ok:
                        return payload
                    if payload == _RESTART:
                        raise WorkerRestarted(
                            "a pool worker died mid-task (respawned)"
                        )
                    raise CrewError(f"pool worker failed: {payload}")
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    self._waiting.pop(task_id, None)
                    raise CrewError(
                        f"pool worker did not answer within {self.timeout}s"
                    )
                if self._draining:
                    self._cond.wait(min(_POLL, remaining))
                else:
                    self._drain_once(min(_POLL, remaining))

    def collect_all(self, task_ids: Sequence[int]) -> List[object]:
        """Collect several tasks in order; abandon the rest on failure."""
        results = []
        for i, task_id in enumerate(task_ids):
            try:
                results.append(self.collect(task_id))
            except Exception:
                self.abandon(task_ids[i + 1:])
                raise
        return results

    def abandon(self, task_ids: Sequence[int]) -> None:
        """Forget tasks whose replies no longer matter."""
        with self._lock:
            for task_id in task_ids:
                self._waiting.pop(task_id, None)
                self._results.pop(task_id, None)

    # -- teardown ------------------------------------------------------------

    def close(self) -> None:
        """Stop all workers (idempotent): sentinel, join, then terminate."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        for queue in self._in_queues:
            try:
                queue.put(None)
            except Exception:  # pragma: no cover - queue torn down
                pass
        for process in self._processes:
            process.join(timeout=5.0)
        for process in self._processes:
            if process.is_alive():  # pragma: no cover - stuck worker
                process.terminate()
                process.join(timeout=1.0)
        for reader in self._replies:
            if reader is not None:
                reader.close()
        self._replies = [None] * len(self._replies)
