"""Process-global metrics: labeled counters, gauges and histograms.

The registry is the single source of truth for everything the
observability layer reports: direct instrumentation (the serve layer
records latencies and batch sizes as they happen) and sampled
instrumentation (managers keep their cheap native counters and a
collector copies them into a registry at snapshot time) both end in
the same three metric kinds:

* :class:`Counter` — a monotonically increasing total;
* :class:`Gauge` — a value that goes up and down (queue depth,
  resident nodes);
* :class:`Histogram` — observations bucketed over **fixed log-scale
  bounds**, so memory stays constant under sustained load and
  percentiles can be estimated from the bucket counts alone.

Every metric is a *family* that may carry labels
(``family.labels(backend="bbdd").inc()``); an unlabeled family acts as
its single time series directly.  :meth:`MetricsRegistry.snapshot`
freezes a registry into a plain JSON-able dict, and
:func:`merge_snapshots` combines snapshots from several processes
(counters and histogram buckets add, gauges add) — the associative
merge is what lets :class:`~repro.serve.pool.ForestPool` workers ship
their numbers back to the dispatcher over the existing result channel.

The module is dependency-free (stdlib only) and sits below every other
``repro`` package.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple


class ObsError(ValueError):
    """Raised on metric misuse (name/type/label mismatches)."""


def log_buckets(lo: float, hi: float, per_decade: int = 3) -> Tuple[float, ...]:
    """Fixed log-scale bucket upper bounds covering ``[lo, hi]``.

    ``per_decade`` bounds are placed per power of ten; the implicit
    ``+Inf`` bucket is not included (snapshots and the Prometheus
    renderer add it).  All histogram families in the catalogue use
    bounds from this helper, so bucket layouts merge cleanly.
    """
    if lo <= 0 or hi <= lo:
        raise ObsError("log_buckets needs 0 < lo < hi")
    if per_decade < 1:
        raise ObsError("per_decade must be >= 1")
    start = math.floor(math.log10(lo) * per_decade)
    stop = math.ceil(math.log10(hi) * per_decade)
    bounds = []
    for step in range(start, stop + 1):
        bound = 10.0 ** (step / per_decade)
        bounds.append(float(f"{bound:.6g}"))
    return tuple(bounds)


#: Default bounds: microseconds to ~20 minutes, 3 per decade — wall
#: times of everything from one apply step to a full harness run.
DEFAULT_BUCKETS = log_buckets(1e-6, 1e3)


def _label_key(labelnames: Sequence[str], labels: Mapping[str, str]) -> tuple:
    if set(labels) != set(labelnames):
        raise ObsError(
            f"labels {sorted(labels)} do not match declared names "
            f"{sorted(labelnames)}"
        )
    return tuple(str(labels[name]) for name in labelnames)


class _MetricFamily:
    """Shared machinery of the three metric kinds (labels, children)."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames: Sequence[str] = ()) -> None:
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._children: Dict[tuple, object] = {}
        self._lock = threading.Lock()
        if not self.labelnames:
            # An unlabeled family IS its single child: create it eagerly
            # so the family always renders (zero until first touched).
            self._children[()] = self._new_child()

    def _new_child(self):
        raise NotImplementedError

    def labels(self, **labels: str):
        """The child time series for one label combination."""
        key = _label_key(self.labelnames, labels)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.setdefault(key, self._new_child())
        return child

    def _self_child(self):
        if self.labelnames:
            raise ObsError(
                f"metric {self.name!r} is labeled {self.labelnames}; "
                "use .labels(...)"
            )
        return self._children[()]

    def samples(self) -> List[dict]:
        """The family's children as snapshot sample dicts."""
        out = []
        for key, child in sorted(self._children.items()):
            sample = child.sample()
            sample["labels"] = dict(zip(self.labelnames, key))
            out.append(sample)
        return out

    def reset(self) -> None:
        """Zero every child (labeled children are kept, not dropped)."""
        for child in self._children.values():
            child.reset()


class _CounterChild:
    """One counter time series."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be >= 0) to the total."""
        if amount < 0:
            raise ObsError("counters only go up")
        self.value += amount

    def sample(self) -> dict:
        return {"value": self.value}

    def reset(self) -> None:
        self.value = 0


class Counter(_MetricFamily):
    """A monotonically increasing total (a Prometheus ``counter``)."""

    kind = "counter"

    def _new_child(self) -> _CounterChild:
        return _CounterChild()

    def inc(self, amount: int = 1) -> None:
        """Increment the unlabeled series."""
        self._self_child().inc(amount)

    @property
    def value(self):
        """Current total of the unlabeled series."""
        return self._self_child().value


class _GaugeChild:
    """One gauge time series."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def set(self, value) -> None:
        """Set the gauge to ``value``."""
        self.value = value

    def inc(self, amount=1) -> None:
        """Add ``amount`` (may be negative)."""
        self.value += amount

    def dec(self, amount=1) -> None:
        """Subtract ``amount``."""
        self.value -= amount

    def sample(self) -> dict:
        return {"value": self.value}

    def reset(self) -> None:
        self.value = 0


class Gauge(_MetricFamily):
    """A value that can go up and down (a Prometheus ``gauge``).

    Gauges from different processes **add** under
    :func:`merge_snapshots` (queue depths and resident counts aggregate
    meaningfully; keep per-process gauges labeled if addition is not
    what you want).
    """

    kind = "gauge"

    def _new_child(self) -> _GaugeChild:
        return _GaugeChild()

    def set(self, value) -> None:
        """Set the unlabeled series."""
        self._self_child().set(value)

    def inc(self, amount=1) -> None:
        """Add to the unlabeled series."""
        self._self_child().inc(amount)

    def dec(self, amount=1) -> None:
        """Subtract from the unlabeled series."""
        self._self_child().dec(amount)

    @property
    def value(self):
        """Current value of the unlabeled series."""
        return self._self_child().value


class _HistogramChild:
    """One histogram time series: per-bucket counts, sum, count."""

    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, bounds: Tuple[float, ...]) -> None:
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # last slot = +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        bounds = self.bounds
        lo, hi = 0, len(bounds)
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= bounds[mid]:
                hi = mid
            else:
                lo = mid + 1
        self.counts[lo] += 1
        self.sum += value
        self.count += 1

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (0..1) from the bucket counts.

        Linear interpolation inside the target bucket (Prometheus'
        ``histogram_quantile`` estimator); observations in the ``+Inf``
        bucket clamp to the highest finite bound.  Returns 0.0 when the
        series has no observations.
        """
        return _bucket_quantile(q, self.bounds, self.counts)

    def sample(self) -> dict:
        return {"counts": list(self.counts), "sum": self.sum, "count": self.count}

    def reset(self) -> None:
        self.counts = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0


def _bucket_quantile(q: float, bounds: Sequence[float], counts: Sequence[int]) -> float:
    if not 0.0 <= q <= 1.0:
        raise ObsError("quantile must be within [0, 1]")
    total = sum(counts)
    if total == 0:
        return 0.0
    rank = q * total
    cumulative = 0
    for index, count in enumerate(counts):
        cumulative += count
        if cumulative >= rank and count:
            if index >= len(bounds):
                return float(bounds[-1]) if bounds else 0.0
            upper = bounds[index]
            lower = bounds[index - 1] if index else 0.0
            within = rank - (cumulative - count)
            return lower + (upper - lower) * (within / count)
    return float(bounds[-1]) if bounds else 0.0


class Histogram(_MetricFamily):
    """Observations over fixed log-scale buckets (Prometheus shape).

    Memory per series is one integer per bucket regardless of traffic,
    which is what lets the serve layer drop its unbounded latency list;
    :meth:`quantile` recovers p50/p99 from the buckets.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        bounds = tuple(buckets) if buckets is not None else DEFAULT_BUCKETS
        if list(bounds) != sorted(set(bounds)):
            raise ObsError("histogram buckets must be strictly increasing")
        self.buckets = bounds
        super().__init__(name, help, labelnames)

    def _new_child(self) -> _HistogramChild:
        return _HistogramChild(self.buckets)

    def observe(self, value: float) -> None:
        """Record one observation on the unlabeled series."""
        self._self_child().observe(value)

    def quantile(self, q: float) -> float:
        """Quantile estimate of the unlabeled series (see the child)."""
        return self._self_child().quantile(q)

    @property
    def count(self) -> int:
        """Observation count of the unlabeled series."""
        return self._self_child().count


class MetricsRegistry:
    """A named collection of metric families.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: the
    first call declares the family, later calls return it (and raise
    :class:`ObsError` if kind or labels disagree — one name, one
    meaning).  :meth:`snapshot` freezes the registry to a JSON-able
    dict, :meth:`reset` zeroes it, and :meth:`merge` folds a snapshot
    from another process into this registry's live metrics.
    """

    def __init__(self) -> None:
        self._metrics: "Dict[str, _MetricFamily]" = {}
        self._lock = threading.Lock()

    def _declare(self, cls, name: str, help: str, labelnames, **kwargs):
        metric = self._metrics.get(name)
        if metric is None:
            with self._lock:
                metric = self._metrics.get(name)
                if metric is None:
                    metric = cls(name, help, labelnames, **kwargs)
                    self._metrics[name] = metric
                    return metric
        if not isinstance(metric, cls):
            raise ObsError(
                f"metric {name!r} already declared as {metric.kind}, not {cls.kind}"
            )
        if tuple(labelnames) != metric.labelnames:
            raise ObsError(
                f"metric {name!r} already declared with labels "
                f"{metric.labelnames}, not {tuple(labelnames)}"
            )
        requested = kwargs.get("buckets")
        if requested is not None and tuple(requested) != metric.buckets:
            raise ObsError(
                f"histogram {name!r} already declared with buckets "
                f"{metric.buckets}, not {tuple(requested)}"
            )
        return metric

    def counter(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> Counter:
        """Get or declare a :class:`Counter` family."""
        return self._declare(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> Gauge:
        """Get or declare a :class:`Gauge` family."""
        return self._declare(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ) -> Histogram:
        """Get or declare a :class:`Histogram` family."""
        return self._declare(Histogram, name, help, labelnames, buckets=buckets)

    def get(self, name: str) -> Optional[_MetricFamily]:
        """The family registered under ``name``, or None."""
        return self._metrics.get(name)

    def names(self) -> List[str]:
        """Registered family names, sorted."""
        return sorted(self._metrics)

    def snapshot(self) -> dict:
        """Freeze the registry into a plain JSON-able dict.

        Shape: ``{name: {"type", "help", "labelnames", "samples",
        ["buckets"]}}`` with counter/gauge samples ``{"labels",
        "value"}`` and histogram samples ``{"labels", "counts", "sum",
        "count"}`` (``counts`` has one extra slot for ``+Inf``).
        """
        out: dict = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            entry = {
                "type": metric.kind,
                "help": metric.help,
                "labelnames": list(metric.labelnames),
                "samples": metric.samples(),
            }
            if isinstance(metric, Histogram):
                entry["buckets"] = list(metric.buckets)
            out[name] = entry
        return out

    def reset(self) -> None:
        """Zero every family (declarations are kept)."""
        for metric in self._metrics.values():
            metric.reset()

    def merge(self, snapshot: Mapping) -> None:
        """Fold one snapshot into this registry's live metrics.

        Families missing here are declared from the snapshot; counter
        and histogram samples add, gauge samples add.  Used by the pool
        dispatcher to absorb worker snapshots.
        """
        for name, entry in snapshot.items():
            kind = entry["type"]
            labelnames = tuple(entry.get("labelnames", ()))
            if kind == "counter":
                metric = self.counter(name, entry.get("help", ""), labelnames)
            elif kind == "gauge":
                metric = self.gauge(name, entry.get("help", ""), labelnames)
            elif kind == "histogram":
                metric = self.histogram(
                    name, entry.get("help", ""), labelnames, entry.get("buckets")
                )
            else:
                raise ObsError(f"unknown metric type {kind!r} in snapshot")
            for sample in entry.get("samples", ()):
                labels = sample.get("labels", {})
                child = metric.labels(**labels) if labelnames else metric._self_child()
                if kind == "histogram":
                    counts = sample.get("counts", ())
                    if len(counts) != len(child.counts):
                        raise ObsError(
                            f"bucket layout mismatch merging {name!r}"
                        )
                    for index, count in enumerate(counts):
                        child.counts[index] += count
                    child.sum += sample.get("sum", 0.0)
                    child.count += sample.get("count", 0)
                elif kind == "counter":
                    child.value += sample.get("value", 0)
                else:
                    child.value += sample.get("value", 0)


def merge_snapshots(*snapshots: Mapping) -> dict:
    """Merge snapshot dicts into one (pure, associative).

    Counters and histogram buckets add; gauges add.  The result is a
    fresh snapshot dict — inputs are not modified.  Associativity
    (``merge(a, merge(b, c)) == merge(merge(a, b), c)``) is what makes
    multiprocess aggregation order-independent.
    """
    registry = MetricsRegistry()
    for snapshot in snapshots:
        registry.merge(snapshot)
    return registry.snapshot()


def snapshot_quantile(entry: Mapping, q: float, **labels: str) -> float:
    """Quantile estimate from one histogram *snapshot* entry.

    ``entry`` is a ``snapshot()[name]`` histogram dict; ``labels``
    selects the sample (omit for an unlabeled family).
    """
    if entry.get("type") != "histogram":
        raise ObsError("snapshot_quantile needs a histogram entry")
    labelnames = entry.get("labelnames", [])
    want = {name: str(labels[name]) for name in labelnames}
    for sample in entry.get("samples", ()):
        if sample.get("labels", {}) == want:
            return _bucket_quantile(q, entry.get("buckets", ()), sample["counts"])
    return 0.0


#: The process-global registry every layer reports into by default.
REGISTRY = MetricsRegistry()
