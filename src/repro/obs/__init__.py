"""repro.obs — unified metrics, tracing and Prometheus exposition.

The observability layer every other ``repro`` package reports into:

* :mod:`repro.obs.registry` — a process-global
  :class:`MetricsRegistry` of labeled :class:`Counter` /
  :class:`Gauge` / :class:`Histogram` families with
  snapshot / reset / merge for multiprocess aggregation;
* :mod:`repro.obs.trace` — :func:`span` wall-clock tracing, off by
  default behind one flag (near-zero overhead when disabled);
* :mod:`repro.obs.promtext` — Prometheus text-format (0.0.4)
  rendering of a snapshot;
* :mod:`repro.obs.export` — a stdlib ``GET /metrics`` HTTP endpoint;
* :mod:`repro.obs.catalog` — the one table naming every metric the
  managers, the external-memory backend and the serve layer emit.

Instrumentation is *pull-based* where it matters: the manager cores
keep their existing cheap native counters and :func:`snapshot` samples
them through each tracked manager's ``collect_metrics`` hook, so the
hot paths pay nothing for observability.  Event-driven layers (serve
latencies, batch sizes) record directly into :data:`REGISTRY`.

>>> import repro
>>> from repro import obs
>>> manager = repro.open("bbdd", vars=["a", "b", "c"])
>>> f = manager.add_expr("a & b | c")
>>> snap = obs.snapshot()
>>> applies = {s["labels"]["backend"]: s["value"]
...            for s in snap["repro_manager_apply_total"]["samples"]}
>>> applies["bbdd"] > 0
True
"""

from __future__ import annotations

import weakref
from typing import List, Mapping, Optional

from repro.obs import catalog, trace
from repro.obs.export import MetricsHTTPServer, start_metrics_server
from repro.obs.promtext import render as render_prometheus
from repro.obs.registry import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    ObsError,
    log_buckets,
    merge_snapshots,
    snapshot_quantile,
)
from repro.obs.trace import span

#: Collectors sampled into every :func:`snapshot` — live managers,
#: pools and hosts register here (weakly; nothing outlives its owner).
_COLLECTORS: "weakref.WeakSet" = weakref.WeakSet()

# The global registry carries the full catalogue from import on, so a
# scrape of a quiet process still exposes every family (zero-valued).
catalog.declare(REGISTRY)


def track(collector) -> None:
    """Register an object to be sampled at snapshot time.

    ``collector`` must expose ``collect_metrics(registry)``; it is held
    weakly, so tracking never extends a manager's lifetime.  Every
    backend manager (and the serve pool machinery) self-registers at
    construction.
    """
    _COLLECTORS.add(collector)


def collect(registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Sample every tracked collector into ``registry`` (fresh if None)."""
    if registry is None:
        registry = MetricsRegistry()
    for collector in list(_COLLECTORS):
        collector.collect_metrics(registry)
    return registry


def reset() -> None:
    """Zero the global registry and forget every tracked collector.

    For processes that inherit observability state they do not own —
    a forked pool worker starts with the parent's counters and tracked
    managers in memory, and without a reset its snapshot would
    double-count them against the parent's own.  Tests use it for a
    clean slate.
    """
    REGISTRY.reset()
    _COLLECTORS.clear()


def snapshot() -> dict:
    """The process-wide metrics snapshot (JSON-able).

    Merges the global registry (direct instrumentation: spans, serve
    histograms) with a fresh sample of every tracked collector
    (manager counters, residency gauges).  Pure sampling — calling it
    twice does not double anything.
    """
    return merge_snapshots(REGISTRY.snapshot(), collect().snapshot())


def enable_tracing() -> None:
    """Turn span tracing on (see :mod:`repro.obs.trace`)."""
    trace.enable()


def disable_tracing() -> None:
    """Turn span tracing off (the default)."""
    trace.disable()


def tracing_enabled() -> bool:
    """Whether span tracing is currently on."""
    return trace.enabled()


def _format_sample_value(value) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def report(snap: Optional[Mapping] = None, include_zero: bool = False) -> str:
    """Pretty-print a snapshot (default: a fresh :func:`snapshot`).

    One line per time series — counters and gauges with their value,
    histograms with count / sum / p50 / p99 estimated from the
    buckets.  Zero-valued series are omitted unless ``include_zero``.
    """
    if snap is None:
        snap = snapshot()
    lines: List[str] = []
    for name in sorted(snap):
        entry = snap[name]
        kind = entry.get("type", "untyped")
        shown = []
        for sample in entry.get("samples", ()):
            labels = sample.get("labels", {})
            label_text = (
                "{" + ",".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}"
                if labels
                else ""
            )
            if kind == "histogram":
                if not sample["count"] and not include_zero:
                    continue
                p50 = snapshot_quantile(entry, 0.5, **labels)
                p99 = snapshot_quantile(entry, 0.99, **labels)
                shown.append(
                    f"  {name}{label_text}  count={sample['count']} "
                    f"sum={_format_sample_value(sample['sum'])} "
                    f"p50={p50:.6g} p99={p99:.6g}"
                )
            else:
                if not sample["value"] and not include_zero:
                    continue
                shown.append(
                    f"  {name}{label_text}  "
                    f"{_format_sample_value(sample['value'])}"
                )
        if shown:
            lines.append(f"[{kind}] {entry.get('help', '')}".rstrip())
            lines.extend(shown)
    if not lines:
        return "(no non-zero metrics)"
    return "\n".join(lines)


__all__ = [
    "REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsHTTPServer",
    "ObsError",
    "catalog",
    "collect",
    "disable_tracing",
    "enable_tracing",
    "log_buckets",
    "merge_snapshots",
    "render_prometheus",
    "report",
    "reset",
    "snapshot",
    "snapshot_quantile",
    "span",
    "start_metrics_server",
    "trace",
    "track",
    "tracing_enabled",
]
