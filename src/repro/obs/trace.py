"""Lightweight span tracing: wall-clock timing of named regions.

Tracing is **off by default** and gated by one module-level flag, so an
uninstrumented process pays a single attribute check per potential
span.  When enabled, ``with span("apply", backend="bbdd"):`` records
the region's wall time into the global
``repro_span_seconds{span=...}`` histogram and bumps
``repro_span_total``; spans nest — a span opened inside another
records under the dot-joined path (``"table1.build"``), and each
completion also counts toward the parent's
``repro_span_children_total`` so a snapshot shows how many child
regions a phase ran.

Hot paths that cannot afford a context manager use the same flag
directly (:data:`STATE` ``.enabled``) plus :func:`record` — the
pattern the manager apply engines follow::

    if STATE.enabled:
        start = perf_counter()
    ...
    if STATE.enabled:
        record("apply", perf_counter() - start, backend="bbdd")
"""

from __future__ import annotations

import threading
import time
from typing import List, Optional

from repro.obs.registry import REGISTRY, log_buckets

#: Bucket bounds of the span histogram (100 ns .. ~20 min).
SPAN_BUCKETS = log_buckets(1e-7, 1e3)


class _TraceState:
    """The tracing switch; a single shared instance lives in ``STATE``."""

    __slots__ = ("enabled",)

    def __init__(self) -> None:
        self.enabled = False


#: Global tracing state; hot paths read ``STATE.enabled`` directly.
STATE = _TraceState()

_STACK = threading.local()


def enable() -> None:
    """Turn span tracing on (process-wide)."""
    STATE.enabled = True


def disable() -> None:
    """Turn span tracing off (the default)."""
    STATE.enabled = False


def enabled() -> bool:
    """Whether span tracing is currently on."""
    return STATE.enabled


class tracing:
    """Context manager scoping ``enable()`` to a block (used by tests).

    >>> from repro.obs import trace
    >>> with trace.tracing():
    ...     trace.enabled()
    True
    >>> trace.enabled()
    False
    """

    def __init__(self, on: bool = True) -> None:
        self._on = on
        self._previous = False

    def __enter__(self) -> "tracing":
        self._previous = STATE.enabled
        STATE.enabled = self._on
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        STATE.enabled = self._previous
        return False


def _stack() -> List[str]:
    stack = getattr(_STACK, "names", None)
    if stack is None:
        stack = _STACK.names = []
    return stack


def _span_label(name: str, labels: dict) -> str:
    if labels:
        detail = ",".join(f"{key}={labels[key]}" for key in sorted(labels))
        name = f"{name}[{detail}]"
    stack = _stack()
    if stack:
        return f"{stack[-1]}.{name}"
    return name


def record(name: str, seconds: float, **labels: str) -> None:
    """Record one completed region of ``seconds`` wall time.

    The low-level half of :func:`span`, for call sites that time
    themselves; respects the current nesting context.
    """
    qualified = _span_label(name, labels)
    REGISTRY.histogram(
        "repro_span_seconds",
        "Wall time of traced spans.",
        labelnames=("span",),
        buckets=SPAN_BUCKETS,
    ).labels(span=qualified).observe(seconds)
    REGISTRY.counter(
        "repro_span_total", "Completed traced spans.", labelnames=("span",)
    ).labels(span=qualified).inc()
    stack = _stack()
    if stack:
        REGISTRY.counter(
            "repro_span_children_total",
            "Child spans completed under each parent span.",
            labelnames=("span",),
        ).labels(span=stack[-1]).inc()


class _NoopSpan:
    """The shared do-nothing span handed out while tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NOOP = _NoopSpan()


class _Span:
    """An active traced region (created by :func:`span` when enabled)."""

    __slots__ = ("name", "labels", "_qualified", "_start")

    def __init__(self, name: str, labels: dict) -> None:
        self.name = name
        self.labels = labels

    def __enter__(self) -> "_Span":
        self._qualified = _span_label(self.name, self.labels)
        _stack().append(self._qualified)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        elapsed = time.perf_counter() - self._start
        stack = _stack()
        if stack and stack[-1] == self._qualified:
            stack.pop()
        REGISTRY.histogram(
            "repro_span_seconds",
            "Wall time of traced spans.",
            labelnames=("span",),
            buckets=SPAN_BUCKETS,
        ).labels(span=self._qualified).observe(elapsed)
        REGISTRY.counter(
            "repro_span_total", "Completed traced spans.", labelnames=("span",)
        ).labels(span=self._qualified).inc()
        if stack:
            REGISTRY.counter(
                "repro_span_children_total",
                "Child spans completed under each parent span.",
                labelnames=("span",),
            ).labels(span=stack[-1]).inc()
        return False


def span(name: str, **labels: str):
    """A context manager timing the enclosed region as ``name``.

    Near-zero cost while tracing is disabled (a flag check and a shared
    no-op object); with tracing enabled the region's wall time lands in
    the ``repro_span_seconds`` histogram under the dot-qualified span
    name (labels fold into the name: ``apply[backend=bbdd]``).
    """
    if not STATE.enabled:
        return _NOOP
    return _Span(name, labels)
