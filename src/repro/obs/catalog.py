"""The metric catalogue: every name the repro layers report.

One table maps each metric name to its kind, help text, label names
and (for histograms) bucket bounds, so instrumentation sites,
collectors and the documentation all agree on one meaning per name.
:func:`declare` pre-registers the whole catalogue in a registry —
the process-global registry is declared at ``repro.obs`` import, so a
``/metrics`` scrape always exposes the full families (zeroed until
traffic arrives) and dashboards never 404 on a quiet process.
:func:`family` is the instrumentation-side accessor: it returns the
family in a given registry, declaring it from the catalogue if needed
(collectors use it against throwaway registries at snapshot time).
"""

from __future__ import annotations

from typing import Mapping

from repro.obs.registry import MetricsRegistry, log_buckets

#: Latency bounds: 10 µs .. ~100 s, 3 per decade.
LATENCY_BUCKETS = log_buckets(1e-5, 1e2)
#: Size bounds (batch sizes, byte counts): 1 .. 1e7, 3 per decade.
SIZE_BUCKETS = log_buckets(1.0, 1e7)

#: ``name -> (kind, help, labelnames, buckets)`` for every catalogued
#: metric; ``buckets`` is None except for histograms.
CATALOG: "Mapping[str, tuple]" = {
    # -- manager cores (bbdd / bdd), sampled from native counters ------
    "repro_manager_unique_lookups_total": (
        "counter", "Unique-table lookups.", ("backend",), None),
    "repro_manager_unique_hits_total": (
        "counter", "Unique-table lookup hits.", ("backend",), None),
    "repro_manager_computed_lookups_total": (
        "counter", "Computed-table (operation cache) lookups.", ("backend",), None),
    "repro_manager_computed_hits_total": (
        "counter", "Computed-table (operation cache) hits.", ("backend",), None),
    "repro_manager_apply_total": (
        "counter", "Top-level apply operations executed.", ("backend",), None),
    "repro_manager_gc_runs_total": (
        "counter", "Garbage collections run.", ("backend",), None),
    "repro_manager_gc_reclaimed_total": (
        "counter", "Nodes reclaimed by garbage collection.", ("backend",), None),
    "repro_manager_nodes": (
        "gauge", "Nodes currently stored.", ("backend",), None),
    "repro_manager_peak_nodes": (
        "gauge", "High-water mark of stored nodes.", ("backend",), None),
    "repro_manager_dead_nodes": (
        "gauge", "Stored nodes with zero references.", ("backend",), None),
    # -- external-memory backend (xmem) --------------------------------
    "repro_xmem_spill_bytes_total": (
        "counter", "Bytes spilled to disk (level blocks + request runs).", (), None),
    "repro_xmem_level_spills_total": (
        "counter", "Level blocks spilled to disk.", (), None),
    "repro_xmem_spilled_nodes_total": (
        "counter", "Node records spilled to disk.", (), None),
    "repro_xmem_level_loads_total": (
        "counter", "Spilled level blocks reloaded into RAM.", (), None),
    "repro_xmem_request_runs_spilled_total": (
        "counter", "Request-queue sorted runs spilled during sweeps.", (), None),
    "repro_xmem_merge_passes_total": (
        "counter", "Run-compaction merge passes over spilled runs.", (), None),
    "repro_xmem_parallel_merge_tasks_total": (
        "counter", "Run-merge groups executed on the merge process pool.", (), None),
    "repro_xmem_resident_nodes": (
        "gauge", "Node records currently resident in RAM.", (), None),
    "repro_xmem_resident_blocks": (
        "gauge", "Level blocks currently resident in RAM.", (), None),
    "repro_xmem_peak_resident_nodes": (
        "gauge", "High-water mark of resident node records.", (), None),
    "repro_xmem_live_nodes": (
        "gauge", "Live node records across representations.", (), None),
    # -- serve: batching server ----------------------------------------
    "repro_serve_request_latency_seconds": (
        "histogram", "Per-query service latency (arrival to response).",
        (), LATENCY_BUCKETS),
    "repro_serve_batch_size": (
        "histogram", "Coalesced batch sizes per served function.",
        ("function",), SIZE_BUCKETS),
    "repro_serve_queue_depth": (
        "gauge", "Queries currently waiting for a batch flush.", (), None),
    "repro_serve_queries_total": (
        "counter", "Single queries accepted by the batching server.", (), None),
    "repro_serve_batches_flushed_total": (
        "counter", "Batch-window flushes executed.", (), None),
    # -- serve: pool dispatcher and forest hosts -----------------------
    "repro_serve_result_cache_hits_total": (
        "counter", "Dispatcher result-cache hits.", (), None),
    "repro_serve_result_cache_misses_total": (
        "counter", "Dispatcher result-cache misses.", (), None),
    "repro_serve_result_cache_entries": (
        "gauge", "Entries resident in the dispatcher result cache.", (), None),
    "repro_serve_batches_dispatched_total": (
        "counter", "Miss batches dispatched to evaluation.", (), None),
    "repro_serve_shards_dispatched_total": (
        "counter", "Shards dispatched across pool workers.", (), None),
    "repro_serve_forest_loads_total": (
        "counter", "Forest containers decoded into a host cache.", (), None),
    "repro_serve_forest_hits_total": (
        "counter", "Forest-host LRU hits (container already loaded).", (), None),
    "repro_serve_worker_restarts_total": (
        "counter", "Pool workers that died and were respawned.", (), None),
    "repro_serve_batch_retries_total": (
        "counter", "Pool batches retried after a worker restart.", (), None),
    "repro_serve_shm_freezes_total": (
        "counter", "Dumps frozen into shared-memory segments.", (), None),
    "repro_serve_shm_attaches_total": (
        "counter", "Shared-segment attachments made by forest hosts.", (), None),
    "repro_serve_shm_segment_bytes": (
        "gauge", "Bytes held in live shared forest segments.", (), None),
    # -- par: shared-memory forests and parallel sweeps ----------------
    "repro_par_tasks_total": (
        "counter", "Sweep/count tasks dispatched to the parallel pool.", (), None),
    "repro_par_batches_total": (
        "counter", "Query batches run through the parallel pool.", (), None),
    "repro_par_batch_retries_total": (
        "counter", "Parallel batches retried after a worker restart.", (), None),
    "repro_par_worker_restarts_total": (
        "counter", "Parallel-pool workers that died and were respawned.", (), None),
    "repro_par_shm_attaches_total": (
        "counter", "Shared-segment attachments made by pool workers.", (), None),
    "repro_par_attached_segments": (
        "gauge", "Segments currently attached in a worker.", (), None),
    # -- wmc: weighted model counting ----------------------------------
    "repro_wmc_sweeps_total": (
        "counter", "Weighted-counting mass sweeps executed.", (), None),
    # -- reach: symbolic reachability ----------------------------------
    "repro_reach_iterations_total": (
        "counter", "BFS fixpoint iterations across reachability runs.", (), None),
    "repro_reach_images_total": (
        "counter", "Relational-product image computations executed.", (), None),
    "repro_reach_frontier_nodes_peak": (
        "gauge", "Largest frontier diagram of the latest reachability run.",
        (), None),
    "repro_reach_visited_nodes_peak": (
        "gauge", "Largest visited-set diagram of the latest reachability run.",
        (), None),
}

_KINDS = {"counter", "gauge", "histogram"}


def family(registry: MetricsRegistry, name: str):
    """The catalogued family ``name`` in ``registry`` (declared if new)."""
    try:
        kind, help_text, labelnames, buckets = CATALOG[name]
    except KeyError:
        raise KeyError(f"metric {name!r} is not in the catalogue") from None
    if kind == "counter":
        return registry.counter(name, help_text, labelnames)
    if kind == "gauge":
        return registry.gauge(name, help_text, labelnames)
    return registry.histogram(name, help_text, labelnames, buckets)


def declare(registry: MetricsRegistry) -> None:
    """Pre-declare every catalogued family in ``registry``."""
    for name in CATALOG:
        family(registry, name)
