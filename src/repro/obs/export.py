"""A tiny stdlib ``GET /metrics`` endpoint for Prometheus scrapers.

:class:`MetricsHTTPServer` runs :class:`http.server.ThreadingHTTPServer`
on a daemon thread and answers ``GET /metrics`` with the text
exposition of a snapshot callable — by default the process-global
:func:`repro.obs.snapshot`, so whatever the process has instrumented is
scrapable with three lines::

    from repro.obs import MetricsHTTPServer
    exporter = MetricsHTTPServer(port=9464)
    exporter.start()

``python -m repro.serve --metrics-port N`` wires this to the batching
server's merged (dispatcher + pool workers) snapshot.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Optional

from repro.obs.promtext import CONTENT_TYPE, render


class _MetricsHandler(BaseHTTPRequestHandler):
    """Answers ``/metrics`` from ``server.snapshot_fn``; 404 elsewhere."""

    server_version = "repro-obs/1.0"

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        """Serve one GET request."""
        if self.path.split("?", 1)[0] not in ("/metrics", "/"):
            self.send_error(404, "only /metrics is served")
            return
        try:
            body = render(self.server.snapshot_fn()).encode("utf-8")
        except Exception as exc:  # noqa: BLE001 - reported to the scraper
            self.send_error(500, f"snapshot failed: {type(exc).__name__}")
            return
        self.send_response(200)
        self.send_header("Content-Type", CONTENT_TYPE)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        """Silence per-request stderr logging (scrapes are periodic)."""


class MetricsHTTPServer:
    """Serve Prometheus text for a snapshot callable on a daemon thread.

    Parameters
    ----------
    port:
        TCP port to bind (0 picks a free one; read :attr:`port` after
        :meth:`start`).
    snapshot_fn:
        Zero-argument callable returning a snapshot dict (default: the
        process-global :func:`repro.obs.snapshot`).
    host:
        Bind address (default loopback).
    """

    def __init__(
        self,
        port: int = 0,
        snapshot_fn: Optional[Callable[[], dict]] = None,
        host: str = "127.0.0.1",
    ) -> None:
        if snapshot_fn is None:
            from repro import obs

            snapshot_fn = obs.snapshot
        self._httpd = ThreadingHTTPServer((host, port), _MetricsHandler)
        self._httpd.snapshot_fn = snapshot_fn
        self._httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> int:
        """The bound TCP port (useful with ``port=0``)."""
        return self._httpd.server_address[1]

    def start(self) -> "MetricsHTTPServer":
        """Start serving on a daemon thread; returns self (idempotent)."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="repro-obs-metrics",
                daemon=True,
            )
            self._thread.start()
        return self

    def close(self) -> None:
        """Stop the server and join its thread (idempotent)."""
        thread = self._thread
        if thread is not None:
            self._thread = None
            self._httpd.shutdown()
            thread.join(timeout=5)
        self._httpd.server_close()

    def __enter__(self) -> "MetricsHTTPServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()


def start_metrics_server(
    port: int = 0,
    snapshot_fn: Optional[Callable[[], dict]] = None,
    host: str = "127.0.0.1",
) -> MetricsHTTPServer:
    """Create and start a :class:`MetricsHTTPServer` in one call."""
    return MetricsHTTPServer(port, snapshot_fn, host).start()
