"""Prometheus text exposition (format version 0.0.4) of a snapshot.

:func:`render` turns a :meth:`~repro.obs.registry.MetricsRegistry.
snapshot` dict into the plain-text format every Prometheus-compatible
scraper understands: ``# HELP`` / ``# TYPE`` headers per family,
``name{label="value"} value`` sample lines, and for histograms the
cumulative ``_bucket{le=...}`` series (including ``+Inf``) plus
``_sum`` and ``_count``.  The renderer is pure — pair it with
:class:`repro.obs.export.MetricsHTTPServer` for a scrapable
``GET /metrics`` endpoint.
"""

from __future__ import annotations

import math
from typing import List, Mapping

#: Content type of the text exposition format, for HTTP responders.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(text: str) -> str:
    return (
        text.replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')
    )


def _format_value(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    value = float(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _labels_text(labels: Mapping[str, str], extra: str = "") -> str:
    parts = [
        f'{name}="{_escape_label_value(str(value))}"'
        for name, value in sorted(labels.items())
    ]
    if extra:
        parts.append(extra)
    if not parts:
        return ""
    return "{" + ",".join(parts) + "}"


def render(snapshot: Mapping) -> str:
    """Render a metrics snapshot as Prometheus text format 0.0.4.

    Families render in name order; histogram bucket lines are
    cumulative with an ``le`` label per upper bound and a final
    ``le="+Inf"`` equal to the total count.
    """
    lines: List[str] = []
    for name in sorted(snapshot):
        entry = snapshot[name]
        kind = entry.get("type", "untyped")
        help_text = entry.get("help", "")
        if help_text:
            lines.append(f"# HELP {name} {_escape_help(help_text)}")
        lines.append(f"# TYPE {name} {kind}")
        for sample in entry.get("samples", ()):
            labels = sample.get("labels", {})
            if kind == "histogram":
                bounds = entry.get("buckets", ())
                cumulative = 0
                for index, count in enumerate(sample["counts"]):
                    cumulative += count
                    upper = (
                        _format_value(bounds[index])
                        if index < len(bounds)
                        else "+Inf"
                    )
                    bucket_labels = _labels_text(labels, f'le="{upper}"')
                    lines.append(f"{name}_bucket{bucket_labels} {cumulative}")
                lines.append(
                    f"{name}_sum{_labels_text(labels)} "
                    f"{_format_value(sample['sum'])}"
                )
                lines.append(
                    f"{name}_count{_labels_text(labels)} {sample['count']}"
                )
            else:
                lines.append(
                    f"{name}{_labels_text(labels)} "
                    f"{_format_value(sample['value'])}"
                )
    return "\n".join(lines) + "\n"
