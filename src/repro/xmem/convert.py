"""Structural interchange for the external-memory backend.

Levelized representations *are* the record shape of the
:mod:`repro.io` binary format, so persistence and migration involving
the xmem backend replay records instead of walking protocol ``ite``
chains:

* :func:`dump_forest` / :func:`load_forest` — native ``.bbdd``
  container i/o (flags 0): dumps interoperate with
  :func:`repro.io.load` into an in-core BBDD manager, and xmem loads
  BBDD dumps.
* :class:`XmemForestRebuilder` — the xmem twin of
  :class:`repro.io.migrate.ForestRebuilder`: replays serialized records
  into a :class:`~repro.xmem.builder.Builder`, structurally when the
  target preserves the dump's relative variable order, else through the
  biconditional expansion (one in-builder XNOR + ITE sweep per record).
* :class:`ToXmemMigrator` / :class:`XmemToBBDDMigrator` — the live
  fast paths :func:`repro.io.migrate.migrate_forest` picks for
  BBDD -> xmem, xmem -> xmem and xmem -> BBDD pairs.
"""

from __future__ import annotations

import io as _io
from typing import Dict, List, Tuple

from repro.core.exceptions import BBDDError, VariableError
from repro.core.operations import OP_XNOR, OP_XOR
from repro.io.format import (
    FLAG_BDD,
    FLAG_COMPRESSED,
    FormatError,
    Header,
    LITERAL_TAG,
    pack_ref,
    version_for_flags,
)
from repro.io.migrate import ForestRebuilder, Rename, _resolve_rename
from repro.io.stream import LevelStreamReader, LevelStreamWriter

from repro.xmem.builder import Builder
from repro.xmem.engine import apply_refs, ite_refs


class XmemForestRebuilder:
    """Replays serialized forest records into an xmem builder.

    Mirrors :class:`repro.io.migrate.ForestRebuilder` (same record and
    ref conventions: ids in replay order, sink id 0, refs pack
    ``(id << 1) | attr``), but targets packed builder refs.  When the
    manager's order preserves the dump's relative variable order each
    record is one :meth:`Builder.make` call; otherwise the record
    rebuilds semantically from ``f = (pv = sv) ? eq : neq`` with
    in-builder streaming XNOR/ITE sweeps.
    """

    def __init__(
        self,
        manager,
        builder: Builder,
        ordered_names,
        rename: Rename = None,
    ) -> None:
        self.manager = manager
        self.builder = builder
        rename_fn = _resolve_rename(rename)
        try:
            self._var_at = [
                manager.var_index(rename_fn(name)) for name in ordered_names
            ]
        except VariableError as exc:
            raise VariableError(
                f"dump variable missing from target manager: {exc}"
            ) from None
        positions = [manager.order.position(v) for v in self._var_at]
        self.order_preserved = all(
            a < b for a, b in zip(positions, positions[1:])
        )
        self._refs: List[int] = [0]  # file id -> packed builder ref
        self._xnor_cache: Dict[Tuple[int, int], int] = {}

    def add_record(
        self, position: int, sv_delta: int, neq_ref: int, eq_ref: int
    ) -> int:
        n = len(self._var_at)
        if not 0 <= position < n:
            raise FormatError(f"record position {position} out of range 0..{n - 1}")
        if sv_delta and not position + sv_delta < n:
            raise FormatError(
                f"record SV position {position + sv_delta} out of range (PV at "
                f"{position}, {n} variables)"
            )
        builder = self.builder
        if sv_delta == LITERAL_TAG:
            ref = builder.literal(self._var_at[position])
        else:
            pv = self._var_at[position]
            sv = self._var_at[position + sv_delta]
            d = self.edge_for(neq_ref)
            e = self.edge_for(eq_ref)
            if self.order_preserved:
                ref = builder.make(pv, sv, d, e)
            else:
                manager = self.manager
                biq = self._xnor_cache.get((pv, sv))
                if biq is None:
                    biq = apply_refs(
                        manager,
                        builder,
                        builder,
                        builder.literal(pv),
                        builder,
                        builder.literal(sv),
                        OP_XNOR,
                    )
                    self._xnor_cache[(pv, sv)] = biq
                ref = ite_refs(
                    manager, builder, builder, biq, builder, e, builder, d
                )
        self._refs.append(ref)
        return ref

    def add_span(
        self, position: int, sv_position: int, bot_position: int, eq_ref: int
    ) -> int:
        """Replay a chain-span record semantically (xmem has no span
        node kind): ``f = eq xor pv xor sv ... xor bot``."""
        n = len(self._var_at)
        if not 0 <= position < sv_position <= bot_position < n:
            raise FormatError(
                f"span record positions ({position}, {sv_position}, "
                f"{bot_position}) out of range ({n} variables)"
            )
        builder = self.builder
        manager = self.manager
        ref = self.edge_for(eq_ref)
        for p in (position, *range(sv_position, bot_position + 1)):
            ref = apply_refs(
                manager,
                builder,
                builder,
                ref,
                builder,
                builder.literal(self._var_at[p]),
                OP_XOR,
            )
        self._refs.append(ref)
        return ref

    def edge_for(self, ref: int) -> int:
        node_id = ref >> 1
        if not 0 <= node_id < len(self._refs):
            raise FormatError(f"edge ref to unwritten node id {node_id}")
        return self._refs[node_id] ^ (ref & 1)

    @property
    def replayed(self) -> int:
        return len(self._refs) - 1


# ----------------------------------------------------------------------
# native dump/load
# ----------------------------------------------------------------------


def _named_functions(functions) -> List[Tuple[str, object]]:
    from repro.api.base import FunctionBase

    if isinstance(functions, FunctionBase):
        return [("f0", functions)]
    if hasattr(functions, "items"):
        return list(functions.items())
    return [(f"f{i}", f) for i, f in enumerate(functions)]


def dump_forest(manager, functions, target, compress: bool = False) -> None:
    """Write an xmem forest to ``target`` (path or binary file object)."""
    from repro.io.binary import check_dump_args

    check_dump_args(functions, target)
    named = _named_functions(functions)
    builder = Builder(manager)
    try:
        memos: Dict[int, Dict[int, int]] = {}
        roots = []
        for name, f in named:
            edge = f.edge if hasattr(f, "edge") else f
            rep, ref = manager._unpack(edge)
            if rep is None:
                roots.append((name, ref))
            else:
                memo = memos.setdefault(id(rep), {})
                roots.append((name, builder.import_ref(rep, ref, memo)))
        levels, new_roots = _canonical_parts(builder, [r for _n, r in roots])
        flags = FLAG_COMPRESSED if compress else 0
        header = Header(
            names=list(manager.var_names),
            order=list(manager.order.order),
            num_roots=len(named),
            levels=[(pos, len(records)) for pos, records in levels],
            version=version_for_flags(flags),
            flags=flags,
        )
        if hasattr(target, "write"):
            _write_levels(target, header, levels, named, new_roots)
        else:
            with open(target, "wb") as fileobj:
                _write_levels(fileobj, header, levels, named, new_roots)
    finally:
        builder.dispose()


def _canonical_parts(builder: Builder, roots: List[int]):
    from repro.xmem.rep import canonicalize

    return canonicalize(builder.full_record, roots)


def _write_levels(fileobj, header, levels, named, new_roots) -> None:
    writer = LevelStreamWriter(fileobj, header)
    for pos, records in levels:
        block = writer.begin_level(pos)
        for sv_delta, neq_ref, eq_ref in records:
            if sv_delta == LITERAL_TAG:
                block.write_literal()
            else:
                block.write_chain(sv_delta, neq_ref, eq_ref)
        block.close()
    writer.write_roots(
        [(ref, name) for (name, _f), ref in zip(named, new_roots)]
    )


def load_forest(manager, source, rename: Rename = None) -> dict:
    """Load a ``.bbdd`` dump into ``manager``; returns ``{name: function}``."""
    from repro.io.binary import check_load_source

    check_load_source(source)
    if hasattr(source, "read"):
        return _load_file(manager, source, rename)
    with open(source, "rb") as fileobj:
        return _load_file(manager, fileobj, rename)


def loads_forest(manager, data: bytes, rename: Rename = None) -> dict:
    return load_forest(manager, _io.BytesIO(data), rename=rename)


def _load_file(manager, fileobj, rename: Rename) -> dict:
    reader = LevelStreamReader(fileobj)
    if reader.header.flags & FLAG_BDD:
        raise FormatError(
            "this is a baseline-BDD dump; use repro.io.bdd_binary.load / "
            "BDDManager.load"
        )
    builder = Builder(manager)
    try:
        rebuilder = XmemForestRebuilder(
            manager, builder, reader.header.ordered_names(), rename=rename
        )
        if reader.chain:
            for position, records in reader.iter_levels():
                for sv_delta, span_delta, neq_ref, eq_ref in records:
                    if span_delta:
                        rebuilder.add_span(
                            position,
                            position + sv_delta,
                            position + sv_delta + span_delta,
                            eq_ref,
                        )
                    else:
                        rebuilder.add_record(position, sv_delta, neq_ref, eq_ref)
        else:
            for position, records in reader.iter_levels():
                for sv_delta, neq_ref, eq_ref in records:
                    rebuilder.add_record(position, sv_delta, neq_ref, eq_ref)
        roots = [
            (name, rebuilder.edge_for(ref)) for ref, name in reader.read_roots()
        ]
        return _wrap_shared(manager, builder, roots)
    finally:
        builder.dispose()


def _wrap_shared(manager, builder: Builder, named_refs) -> dict:
    """Finish one shared rep for several roots; wrap each as a function."""
    sink_entries = {
        name: bool(ref & 1) for name, ref in named_refs if ref >> 1 == 0
    }
    live = [(name, ref) for name, ref in named_refs if ref >> 1]
    functions = {}
    if live:
        rep, new_roots = builder.finish([ref for _name, ref in live])
        manager._register(rep)
        for (name, _old), ref in zip(live, new_roots):
            functions[name] = manager.function(
                (manager._handle(rep, ref >> 1), bool(ref & 1))
            )
    else:
        builder.dispose()
    for name, attr in sink_entries.items():
        functions[name] = manager.function((manager._sink, attr))
    manager._rebalance()
    return functions


# ----------------------------------------------------------------------
# live migration fast paths (selected by repro.io.migrate._migrator_for)
# ----------------------------------------------------------------------


class ToXmemMigrator:
    """Structural BBDD/xmem -> xmem migration (record replay).

    One builder is shared across every ``function`` call (its unique
    table re-shares structure between migrated functions), and an xmem
    source representation is replayed at most once no matter how many
    of its functions migrate — each call only snapshots its root's
    sub-DAG into a target representation.  The builder's records are
    released when the migrator is garbage collected.
    """

    def __init__(self, src, dst, rename: Rename = None) -> None:
        if src is dst:
            raise BBDDError("source and target managers must differ")
        self.src = src
        self.dst = dst
        self._rename = rename
        self._ordered_names = [src.var_name(v) for v in src.order.order]
        self._builder = Builder(dst)
        #: Per-source-rep replay cache: id(rep) -> (rep, XmemForestRebuilder).
        self._replayed: Dict[int, Tuple[object, XmemForestRebuilder]] = {}

    def _fresh_rebuilder(self) -> XmemForestRebuilder:
        return XmemForestRebuilder(
            self.dst, self._builder, self._ordered_names, rename=self._rename
        )

    def _rebuilder_for(self, rep) -> XmemForestRebuilder:
        entry = self._replayed.get(id(rep))
        if entry is None:
            rebuilder = self._fresh_rebuilder()
            for _nid, pos, sv_delta, neq_ref, eq_ref in rep.iter_records():
                rebuilder.add_record(pos, sv_delta, neq_ref, eq_ref)
            entry = self._replayed[id(rep)] = (rep, rebuilder)
        return entry[1]

    def function(self, f):
        if f.manager is not self.src:
            raise BBDDError("function does not belong to the source manager")
        if self.src.backend == "xmem":
            rep, ref = self.src._unpack(f.edge)
            if rep is None:
                return self.dst.function((self.dst._sink, bool(ref & 1)))
            root = self._rebuilder_for(rep).edge_for(ref)
        else:  # live BBDD nodes -> serializable records -> replay
            from repro.io.binary import forest_records

            edge = f.edge  # signed-int flat-store edge
            if edge == 1 or edge == -1:
                return self.dst.function((self.dst._sink, edge < 0))
            # Each call has its own file-id space; the shared builder's
            # unique table still dedups the created records.
            rebuilder = self._fresh_rebuilder()
            records, ids = forest_records(self.src, [("f", edge)])
            for position, sv_position, span_delta, _node, neq, eq in records:
                if sv_position is None:
                    rebuilder.add_record(position, LITERAL_TAG, 0, 0)
                elif span_delta:
                    rebuilder.add_span(
                        position,
                        sv_position,
                        sv_position + span_delta,
                        pack_ref(*eq),
                    )
                else:
                    rebuilder.add_record(
                        position,
                        sv_position - position,
                        pack_ref(*neq),
                        pack_ref(*eq),
                    )
            root = rebuilder.edge_for(
                pack_ref(ids[-edge if edge < 0 else edge], edge < 0)
            )
        if root >> 1 == 0:
            return self.dst.function((self.dst._sink, bool(root & 1)))
        rep, new_roots = self._builder.snapshot([root])
        self.dst._register(rep)
        result = self.dst.function(
            (self.dst._handle(rep, new_roots[0] >> 1), bool(new_roots[0] & 1))
        )
        self.dst._rebalance()
        return result


class XmemToBBDDMigrator:
    """Structural xmem -> BBDD migration (record replay through
    :class:`repro.io.migrate.ForestRebuilder`, which re-reduces on the
    fly and handles renames and order changes)."""

    def __init__(self, src, dst, rename: Rename = None) -> None:
        if src is dst:
            raise BBDDError("source and target managers must differ")
        self.src = src
        self.dst = dst
        self._rename = rename
        self._ordered_names = [src.var_name(v) for v in src.order.order]
        #: Per-source-rep replay cache: id(rep) -> (rep, ForestRebuilder).
        self._replayed: Dict[int, Tuple[object, ForestRebuilder]] = {}

    def _rebuilder_for(self, rep) -> ForestRebuilder:
        entry = self._replayed.get(id(rep))
        if entry is None:
            rebuilder = ForestRebuilder(
                self.dst, self._ordered_names, rename=self._rename
            )
            with self.dst.defer_gc():
                for _nid, pos, sv_delta, neq_ref, eq_ref in rep.iter_records():
                    rebuilder.add_record(pos, sv_delta, neq_ref, eq_ref)
            entry = self._replayed[id(rep)] = (rep, rebuilder)
        return entry[1]

    def function(self, f):
        if f.manager is not self.src:
            raise BBDDError("function does not belong to the source manager")
        rep, ref = self.src._unpack(f.edge)
        if rep is None:
            return self.dst.function(
                self.dst.false_edge if ref & 1 else self.dst.true_edge
            )
        rebuilder = self._rebuilder_for(rep)
        with self.dst.defer_gc():
            return self.dst.function(rebuilder.edge_for(ref))
