"""Streaming sweeps over levelized representations (Algorithm 1, external).

The apply engine rephrases the BBDD apply of
:meth:`repro.core.manager.BBDDManager._apply` as the two level-by-level
passes of external-memory decision-diagram manipulation (Sølvsten & van
de Pol's time-forward processing):

1. **Top-down request generation.**  Starting from the root operand
   pair, each CVO level accumulates *product requests* — ``(uid_f,
   uid_g)`` descriptor pairs with the operand complement attributes
   folded into the 4-bit operator (the paper's ``updateop``), so
   requests are attribute-free and deduplicate structurally.  A level's
   request set lives in a :class:`~repro.xmem.runs.SortedRunSpiller`:
   beyond the chunk budget it spills to sorted varint runs on disk and
   is consumed as a k-way merge.  Expanding a request performs the
   biconditional cofactor step — including Algorithm 1's *chain
   transform*, expressed virtually as a re-rooted/swapped descriptor so
   no node is materialized for it — and emits the two child requests to
   deeper levels (terminal children resolve immediately, with
   unchanged-subgraph survivors imported structurally into the output
   builder).

2. **Bottom-up reduce.**  Levels resolve deepest-first: each pending
   expansion combines its children's results through
   :meth:`repro.xmem.builder.Builder.make`, which applies reduction
   rules R1 (per-level unique records), R2 and the SV-elimination/R4
   cascade — children records are always available because deeper
   levels reduced first.

Descriptors are 4-tuples ``(kind, id, root_pos, swap)``: ``kind`` 0/1
names the operand container (0 for both when they are the same
object, so the diagonal terminal rule applies), kind 2 is the literal
of the variable at ``root_pos``; ``root_pos`` differs from the node's
natural level exactly for chain-transformed (re-rooted) views, and
``swap`` exchanges the children of such a view.

``restrict`` is the single-operand sweep: a bottom-up replay of the
operand's records through the builder, with the couple-collapse cases
(primary or secondary variable hit) resolved by in-builder ``ite``
sub-sweeps, mirroring :func:`repro.core.apply.restrict`.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.operations import (
    OP_AND,
    OP_OR,
    UNARY_FALSE,
    UNARY_ID,
    UNARY_NOT,
    UNARY_TRUE,
    diagonal,
    flip_a,
    flip_b,
    restrict_a,
    restrict_b,
)

from repro.xmem.runs import SortedRunSpiller

#: Descriptor kind marking the literal of the variable at ``root_pos``.
_LIT = 2

#: Request tuples: descA (4) + descB (4) + op (1).
_ARITY = 9


def apply_refs(manager, builder, cont_a, ref_a, cont_b, ref_b, op: int) -> int:
    """Streaming ``f <op> g`` over two containers; result ref in ``builder``.

    ``cont_a``/``cont_b`` are :class:`~repro.xmem.rep.Levelized` or
    :class:`~repro.xmem.builder.Builder` containers (or None for a sink
    operand); ``ref_a``/``ref_b`` packed refs into them.
    """
    var_at = manager.order.order
    num_vars = manager.num_vars
    store = manager._store

    same = cont_a is cont_b
    containers = (cont_a, cont_b)
    import_memo: Dict[Tuple[int, int], int] = {}

    def desc_for(kind: int, node_id: int):
        """Natural descriptor of a container node (literals normalized to
        kind ``_LIT`` so equal functions get equal descriptors)."""
        pos, sv_delta, _neq, _eq = containers[kind].full_record(node_id)
        if sv_delta == 0:
            return (_LIT, 0, pos, 0)
        return (kind, node_id, pos, 0)

    def import_desc(desc) -> int:
        """Materialize a descriptor's function into the builder."""
        kind, node_id, root_pos, swap = desc
        if kind == _LIT:
            return builder.literal(var_at[root_pos])
        cont = containers[kind]
        pos, sv_delta, neq_ref, eq_ref = cont.full_record(node_id)
        if root_pos == pos and not swap:
            if cont is builder:
                return node_id << 1
            return builder.import_ref(cont, node_id << 1, _builder_memo(kind))
        # Re-rooted / swapped view: materialize one node over the
        # naturally imported children.
        memo = _builder_memo(kind)
        d = _map_child(cont, kind, neq_ref, memo)
        e = _map_child(cont, kind, eq_ref, memo)
        if swap:
            d, e = e, d
        return builder.make(var_at[root_pos], var_at[pos + sv_delta], d, e)

    _natural_memos: Dict[int, Dict[int, int]] = {}

    def _builder_memo(kind: int) -> Dict[int, int]:
        memo = _natural_memos.get(kind)
        if memo is None:
            memo = _natural_memos[kind] = {}
        return memo

    def _map_child(cont, kind: int, ref: int, memo: Dict[int, int]) -> int:
        if ref >> 1 == 0:
            return ref
        if cont is builder:
            return ref
        return builder.import_ref(cont, ref, memo)

    def unary(outcome: str, desc) -> int:
        if outcome == UNARY_TRUE:
            return 0
        if outcome == UNARY_FALSE:
            return 1
        if desc is None:  # the survivor is the sink
            return 0 if outcome == UNARY_ID else 1
        ref = import_desc(desc)
        return ref ^ 1 if outcome == UNARY_NOT else ref

    def terminal(desc_a, desc_b, sub: int):
        """Resolve Algorithm 1's terminal cases; None means 'expand'."""
        if desc_a is None:
            return unary(restrict_a(sub, 1), desc_b)
        if desc_b is None:
            return unary(restrict_b(sub, 1), desc_a)
        if desc_a == desc_b:
            return unary(diagonal(sub), desc_a)
        if ((sub >> 1) & 0b101) == (sub & 0b101):  # independent of b
            return unary(restrict_b(sub, 0), desc_a)
        if ((sub >> 2) & 0b11) == (sub & 0b11):  # independent of a
            return unary(restrict_a(sub, 0), desc_b)
        return None

    buffers: Dict[int, SortedRunSpiller] = {}
    pendings: Dict[int, List[tuple]] = {}
    results: Dict[tuple, int] = {}
    chunk = manager._request_chunk

    def push(key: tuple) -> None:
        level = min(key[2], key[6])
        spiller = buffers.get(level)
        if spiller is None:
            spiller = buffers[level] = SortedRunSpiller(
                _ARITY,
                chunk,
                lambda: store.new_path("req"),
                merge_workers=manager._merge_workers,
            )
        spiller.add(key)

    def child_spec(spec_a, spec_b, sub: int):
        """Resolve or enqueue one child request; returns a pending spec."""
        desc_a, attr_a = spec_a
        desc_b, attr_b = spec_b
        if attr_a:
            sub = flip_a(sub)
        if attr_b:
            sub = flip_b(sub)
        resolved = terminal(desc_a, desc_b, sub)
        if resolved is not None:
            return (False, resolved)
        key = desc_a + desc_b + (sub,)
        push(key)
        return (True, key)

    def spec_from_ref(kind: int, ref: int):
        node_id = ref >> 1
        if node_id == 0:
            return (None, ref & 1)
        return (desc_for(kind, node_id), ref & 1)

    def cofactors(desc, pos: int, w_pos: int):
        """Biconditional cofactors ``(neq, eq)`` of a descriptor w.r.t.
        the expansion couple (variables at ``pos`` / ``w_pos``)."""
        kind, node_id, root_pos, swap = desc
        if root_pos > pos:
            unchanged = (desc, 0)
            return (unchanged, unchanged)
        if kind == _LIT:
            lit_w = (_LIT, 0, w_pos, 0)
            return ((lit_w, 1), (lit_w, 0))
        npos, sv_delta, neq_ref, eq_ref = containers[kind].full_record(node_id)
        if swap:
            neq_ref, eq_ref = eq_ref, neq_ref
        if npos + sv_delta == w_pos:
            return (spec_from_ref(kind, neq_ref), spec_from_ref(kind, eq_ref))
        # Chain transform (virtual): the couple's SV is earlier than this
        # node's, so the substitution re-roots the view at w.
        return (
            ((kind, node_id, w_pos, swap ^ 1), 0),
            ((kind, node_id, w_pos, swap), 0),
        )

    def expand(key: tuple, pos: int) -> None:
        desc_a = key[0:4]
        desc_b = key[4:8]
        sub = key[8]
        # Expansion SV: earliest following variable visible in either
        # operand's structure (own SV if rooted here, root otherwise).
        w_pos = num_vars + 1
        for kind, node_id, root_pos, _swap in (desc_a, desc_b):
            if root_pos == pos:
                if kind == _LIT:
                    continue
                npos, sv_delta, _neq, _eq = containers[kind].full_record(node_id)
                cand = npos + sv_delta
            else:
                cand = root_pos
            if cand < w_pos:
                w_pos = cand
        # Both operands literal at pos would have equal descriptors and
        # resolve diagonally before ever being enqueued.
        neq_a, eq_a = cofactors(desc_a, pos, w_pos)
        neq_b, eq_b = cofactors(desc_b, pos, w_pos)
        pendings.setdefault(pos, []).append(
            (
                key,
                var_at[pos],
                var_at[w_pos],
                child_spec(eq_a, eq_b, sub),
                child_spec(neq_a, neq_b, sub),
            )
        )

    # -- root ------------------------------------------------------------
    node_a = ref_a >> 1
    if ref_a & 1:
        op = flip_a(op)
    node_b = ref_b >> 1
    if ref_b & 1:
        op = flip_b(op)
    desc_a = None if node_a == 0 else desc_for(0, node_a)
    desc_b = None if node_b == 0 else desc_for(0 if same else 1, node_b)
    resolved = terminal(desc_a, desc_b, op)
    if resolved is not None:
        return resolved
    root_key = desc_a + desc_b + (op,)
    push(root_key)

    # -- pass 1: top-down request generation ------------------------------
    for pos in range(num_vars):
        spiller = buffers.pop(pos, None)
        if spiller is None:
            continue
        store.runs_spilled += spiller.runs_spilled
        for key in spiller.iter_sorted_unique():
            expand(key, pos)
        spiller.cleanup()
        # Compaction merge passes (and their bytes) happen while the
        # merged stream is consumed, so settle them after cleanup.
        store.merge_passes += spiller.merge_passes
        store.parallel_merge_tasks += spiller.parallel_merge_tasks
        store.spill_bytes += spiller.run_bytes

    # -- pass 2: bottom-up reduce -----------------------------------------
    for pos in sorted(pendings, reverse=True):
        for key, v_var, w_var, eq_spec, neq_spec in pendings[pos]:
            e = results[eq_spec[1]] if eq_spec[0] else eq_spec[1]
            d = results[neq_spec[1]] if neq_spec[0] else neq_spec[1]
            results[key] = builder.make(v_var, w_var, d, e)
    return results[root_key]


def ite_refs(manager, builder, cont_f, rf, cont_g, rg, cont_h, rh) -> int:
    """``f ? g : h`` as the composition of three streaming applies."""
    fg = apply_refs(manager, builder, cont_f, rf, cont_g, rg, OP_AND)
    fh = apply_refs(manager, builder, cont_f, rf ^ 1, cont_h, rh, OP_AND)
    return apply_refs(manager, builder, builder, fg, builder, fh, OP_OR)


def restrict_replay(manager, builder, rep, root_ref: int, var: int, value: bool) -> int:
    """Cofactor ``root_ref`` (in ``rep``) with ``var = value``.

    One bottom-up replay of the representation's records: untouched
    couples rebuild structurally through :meth:`Builder.make`; couples
    whose primary or secondary variable is ``var`` collapse their
    branching condition onto the surviving member via an in-builder
    ``ite`` sub-sweep — the three structural cases of
    :func:`repro.core.apply.restrict`.
    """
    var_at = manager.order.order
    new_refs = [0] * (rep.size + 1)
    # Only the sub-DAG of this function: a representation may hold a
    # whole loaded forest, and replaying unrelated functions' records
    # (with their ite sub-sweeps) would scale with the forest instead.
    reachable = rep.reachable_ids([root_ref >> 1])

    def mapped(ref: int) -> int:
        child = ref >> 1
        if child == 0:
            return ref
        return new_refs[child] ^ (ref & 1)

    for node_id, pos, sv_delta, neq_ref, eq_ref in rep.iter_records():
        if node_id not in reachable:
            continue
        pv = var_at[pos]
        if sv_delta == 0:
            if pv == var:
                # lit(var) | var=value is the constant `value`.
                new_refs[node_id] = 0 if value else 1
            else:
                new_refs[node_id] = builder.literal(pv)
            continue
        sv = var_at[pos + sv_delta]
        d = mapped(neq_ref)
        e = mapped(eq_ref)
        if pv == var:
            # The branching condition collapses onto sv; children never
            # mention pv, so they replay untouched.
            lit = builder.literal(sv)
            if value:
                new_refs[node_id] = ite_refs(
                    manager, builder, builder, lit, builder, e, builder, d
                )
            else:
                new_refs[node_id] = ite_refs(
                    manager, builder, builder, lit, builder, d, builder, e
                )
        elif sv == var:
            # Children were already restricted by this replay; the
            # condition collapses onto pv.
            lit = builder.literal(pv)
            if value:
                new_refs[node_id] = ite_refs(
                    manager, builder, builder, lit, builder, e, builder, d
                )
            else:
                new_refs[node_id] = ite_refs(
                    manager, builder, builder, lit, builder, d, builder, e
                )
        else:
            new_refs[node_id] = builder.make(pv, sv, d, e)
    return mapped(root_ref)
