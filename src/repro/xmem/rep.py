"""Levelized node files: the external-memory function representation.

A :class:`Levelized` is one function's (or one loaded forest's) node
file, in exactly the record shape of the on-disk format
(:mod:`repro.io.format`): per CVO level, deepest level first, records
``(sv_delta, neq_ref, eq_ref)`` with ``sv_delta == 0`` marking a
literal (R4) node, refs packing ``(id << 1) | attr`` and id 0 the
1-sink.  Ids are dense, assigned bottom-up, so every reference points
to an earlier id — a sequential (streaming) reader always sees children
first.

Representations are immutable after construction and **canonical**:
within each level the records are unique (rule R1) and sorted by their
rewritten key, and ids are assigned in that order, so two equal
functions (under one manager) produce byte-identical representations —
equality reduces to comparing canonical signatures.

Each level block is independently *spillable*: its records can be
encoded to a spill file (the varint codec of :mod:`repro.io.format`,
deflated per block — spill files are private to one process, so the
compression is unconditional) and dropped from RAM, then transparently
reloaded on access.  The manager's :class:`SpillStore` accounts
residency against the ``node_budget``; ``spill_bytes`` counts the
compressed bytes actually written.
"""

from __future__ import annotations

import os
import tempfile
import weakref
import zlib
from bisect import bisect_right
from hashlib import blake2b
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.io.format import decode_records, encode_chain, encode_literal

Record = Tuple[int, int, int]  # (sv_delta, neq_ref, eq_ref); literal = (0, 0, 0)


class SpillStore:
    """Spill-file factory + residency accounting shared by one manager.

    ``resident`` counts node records currently held in RAM across every
    representation (and in-flight builder) of the manager;
    ``peak_resident`` is its high-water mark — the number the
    ``node_budget`` bench gates check.
    """

    def __init__(self, directory: Optional[str] = None) -> None:
        self._dir = directory
        self._seq = 0
        self.tick = 0
        self.resident = 0
        self.peak_resident = 0
        self.spilled_nodes = 0
        self.spill_writes = 0
        self.spill_bytes = 0
        self.level_loads = 0
        self.runs_spilled = 0
        self.merge_passes = 0
        self.parallel_merge_tasks = 0

    @property
    def directory(self) -> str:
        if self._dir is None:
            self._dir = tempfile.mkdtemp(prefix="repro-xmem-")
        return self._dir

    def new_path(self, tag: str) -> str:
        self._seq += 1
        return os.path.join(self.directory, f"{tag}-{self._seq:08d}.bin")

    def note(self, delta: int) -> None:
        self.resident += delta
        if self.resident > self.peak_resident:
            self.peak_resident = self.resident

    def next_tick(self) -> int:
        self.tick += 1
        return self.tick


class _LevelBlock:
    """One level of a representation: resident records or a spill file."""

    __slots__ = ("position", "count", "records", "spill_path")

    def __init__(self, position: int, records: List[Record]) -> None:
        self.position = position
        self.count = len(records)
        self.records: Optional[List[Record]] = records
        self.spill_path: Optional[str] = None

    def encode(self) -> bytes:
        out = bytearray()
        for sv_delta, neq_ref, eq_ref in self.records:
            if sv_delta == 0:
                encode_literal(out)
            else:
                encode_chain(sv_delta, neq_ref, eq_ref, out)
        return bytes(out)


def _cleanup_rep(store: SpillStore, state: dict) -> None:
    """Finalizer: release residency and delete this rep's spill files."""
    store.resident -= state["resident"]
    for path in state["paths"]:
        try:
            os.unlink(path)
        except OSError:  # pragma: no cover - best-effort cleanup
            pass


class Levelized:
    """An immutable levelized node file with dense bottom-up ids."""

    __slots__ = (
        "store",
        "levels",
        "starts",
        "size",
        "roots",
        "last_use",
        "_state",
        "_handles",
        "_sigs",
        "_supp",
        "__weakref__",
    )

    def __init__(
        self,
        store: SpillStore,
        levels: List[Tuple[int, List[Record]]],
        roots: List[int],
    ) -> None:
        self.store = store
        self.levels = [_LevelBlock(pos, recs) for pos, recs in levels]
        starts = []
        next_id = 1
        for block in self.levels:
            starts.append(next_id)
            next_id += block.count
        self.starts = starts
        self.size = next_id - 1
        self.roots = list(roots)
        self.last_use = store.next_tick()
        self._state = {"resident": self.size, "paths": []}
        store.note(self.size)
        weakref.finalize(self, _cleanup_rep, store, self._state)
        self._handles = weakref.WeakValueDictionary()
        self._sigs: Dict[int, bytes] = {}
        self._supp: Dict[int, frozenset] = {}

    # -- record access ---------------------------------------------------

    def _level_index(self, node_id: int) -> int:
        return bisect_right(self.starts, node_id) - 1

    def _ensure(self, index: int) -> List[Record]:
        block = self.levels[index]
        records = block.records
        if records is None:
            with open(block.spill_path, "rb") as fileobj:
                payload = fileobj.read()
            records = decode_records(zlib.decompress(payload), block.count)
            block.records = records
            store = self.store
            store.level_loads += 1
            store.note(block.count)
            self._state["resident"] += block.count
        return records

    def full_record(self, node_id: int) -> Tuple[int, int, int, int]:
        """``(position, sv_delta, neq_ref, eq_ref)`` of node ``node_id``."""
        index = self._level_index(node_id)
        block = self.levels[index]
        sv_delta, neq_ref, eq_ref = self._ensure(index)[node_id - self.starts[index]]
        self.last_use = self.store.next_tick()
        return (block.position, sv_delta, neq_ref, eq_ref)

    def pos_of(self, node_id: int) -> int:
        return self.levels[self._level_index(node_id)].position

    def iter_records(self):
        """Yield ``(node_id, position, sv_delta, neq_ref, eq_ref)`` in id
        order — deepest level first, i.e. children before parents."""
        node_id = 0
        for index, block in enumerate(self.levels):
            for record in self._ensure(index):
                node_id += 1
                yield (node_id, block.position, record[0], record[1], record[2])
        self.last_use = self.store.next_tick()

    # -- spilling --------------------------------------------------------

    def spill_block(self, index: int) -> int:
        """Drop one resident level block to disk; returns freed records.

        A block's spill file is written once (representations are
        immutable) and reused on later spills of the same block.  The
        streaming readers (:meth:`repro.xmem.manager.XmemManager.
        batch_stream`) use this to drop levels behind themselves, so a
        sweep over a beyond-budget representation stays within the
        residency budget.
        """
        block = self.levels[index]
        if block.records is None or block.count == 0:
            return 0
        store = self.store
        if block.spill_path is None:
            path = store.new_path("rep")
            payload = zlib.compress(block.encode(), 6)
            with open(path, "wb") as fileobj:
                fileobj.write(payload)
            block.spill_path = path
            self._state["paths"].append(path)
            store.spill_writes += 1
            store.spilled_nodes += block.count
            store.spill_bytes += len(payload)
        block.records = None
        store.note(-block.count)
        self._state["resident"] -= block.count
        return block.count

    def spill(self) -> int:
        """Drop every resident level block to disk; returns freed records."""
        return sum(self.spill_block(index) for index in range(len(self.levels)))

    @property
    def resident_count(self) -> int:
        return self._state["resident"]

    # -- reachability ----------------------------------------------------

    def reachable_ids(self, ids: Iterable[int]) -> Set[int]:
        seen: Set[int] = set()
        stack = [i for i in ids if i]
        while stack:
            node_id = stack.pop()
            if node_id in seen:
                continue
            seen.add(node_id)
            _pos, sv_delta, neq_ref, eq_ref = self.full_record(node_id)
            if sv_delta:
                for ref in (neq_ref, eq_ref):
                    child = ref >> 1
                    if child and child not in seen:
                        stack.append(child)
        return seen

    def support_of(self, node_id: int, var_at) -> frozenset:
        """Support variable indices of the function rooted at ``node_id``."""
        cached = self._supp.get(node_id)
        if cached is None:
            vars_: Set[int] = set()
            for nid in self.reachable_ids([node_id]):
                pos, sv_delta, _neq, _eq = self.full_record(nid)
                vars_.add(var_at[pos])
                if sv_delta:
                    vars_.add(var_at[pos + sv_delta])
            cached = frozenset(vars_)
            self._supp[node_id] = cached
        return cached

    def digest(self, node_id: int) -> bytes:
        """Content-addressed digest of the sub-DAG at ``node_id``.

        A bottom-up Merkle hash over the canonical structure: a node's
        digest is a 128-bit blake2b over its level position, couple
        shape and its children's digests, so it is independent of the
        representation's id numbering.  Because representations are
        canonical, two nodes (possibly of different representations
        under one manager) denote the same function exactly when their
        digests are equal (up to hash collisions, ~2^-128) — this backs
        function equality and the manager's uid interning in O(1)
        amortized per node instead of materializing sub-DAG structure.
        """
        digests = self._sigs
        cached = digests.get(node_id)
        if cached is None:
            # Children always have smaller ids: one ascending pass fills
            # every missing digest up to node_id.
            for nid, pos, sv_delta, neq_ref, eq_ref in self.iter_records():
                if nid > node_id:
                    break
                if nid in digests:
                    continue
                hasher = blake2b(digest_size=16)
                if sv_delta == 0:
                    hasher.update(b"L%d" % pos)
                else:
                    hasher.update(
                        b"C%d,%d,%d,%d," % (pos, sv_delta, neq_ref & 1, eq_ref & 1)
                    )
                    hasher.update(digests[neq_ref >> 1] if neq_ref >> 1 else b"S")
                    hasher.update(digests[eq_ref >> 1] if eq_ref >> 1 else b"S")
                digests[nid] = hasher.digest()
            cached = digests[node_id]
        return cached


def canonicalize(get_full_record, root_refs: List[int]):
    """Renumber the sub-DAG reachable from ``root_refs`` canonically.

    ``get_full_record(id) -> (position, sv_delta, neq_ref, eq_ref)``.
    Returns ``(levels, new_roots)``: levels as ``[(position, records)]``
    deepest-first with records rewritten to the new dense bottom-up ids
    and sorted by their rewritten key (deterministic because records
    are unique per level), and the root refs remapped.
    """
    seen: Set[int] = set()
    stack = [ref >> 1 for ref in root_refs if ref >> 1]
    records: Dict[int, Tuple[int, int, int, int]] = {}
    while stack:
        node_id = stack.pop()
        if node_id in seen:
            continue
        seen.add(node_id)
        rec = get_full_record(node_id)
        records[node_id] = rec
        if rec[1]:
            for ref in (rec[2], rec[3]):
                child = ref >> 1
                if child and child not in seen:
                    stack.append(child)
    by_pos: Dict[int, List[int]] = {}
    for node_id, rec in records.items():
        by_pos.setdefault(rec[0], []).append(node_id)
    mapping = {0: 0}
    levels: List[Tuple[int, List[Record]]] = []
    next_id = 1
    for pos in sorted(by_pos, reverse=True):
        rewritten = []
        for node_id in by_pos[pos]:
            _p, sv_delta, neq_ref, eq_ref = records[node_id]
            if sv_delta:
                neq = (mapping[neq_ref >> 1] << 1) | (neq_ref & 1)
                eq = (mapping[eq_ref >> 1] << 1) | (eq_ref & 1)
            else:
                neq = eq = 0
            rewritten.append((sv_delta, neq, eq, node_id))
        rewritten.sort(key=lambda t: t[:3])
        level_records: List[Record] = []
        for sv_delta, neq, eq, node_id in rewritten:
            mapping[node_id] = next_id
            next_id += 1
            level_records.append((sv_delta, neq, eq))
        levels.append((pos, level_records))
    new_roots = [(mapping[ref >> 1] << 1) | (ref & 1) for ref in root_refs]
    return levels, new_roots
