"""Spill-to-disk sorted runs of fixed-arity integer tuples.

The external-memory sweeps of :mod:`repro.xmem.engine` generate product
requests per level; a level's request set can exceed the in-RAM budget,
so it is accumulated through a :class:`SortedRunSpiller`: tuples collect
in a resident chunk, full chunks are sorted and written to disk as
*runs* (varint-encoded, one unsigned LEB128 per tuple element — the
same codec as the node files, :mod:`repro.io.format`), and consumption
is a pure-Python k-way merge (:func:`heapq.merge`) over the sorted
resident chunk and the runs, deduplicating adjacent equal tuples.

This is the classic external merge-sort shape of Sølvsten & van de
Pol's time-forward processing, scaled down to one level's working set.

Run compaction (merging many runs into fewer, wider runs so the final
k-way merge has bounded fan-in) is embarrassingly parallel across
groups: each group merge reads and writes only its own files.  With
``merge_workers > 1`` a compaction pass farms its groups out to a
process pool; any pool failure silently falls back to the sequential
merge, so parallelism is purely an optimization.
"""

from __future__ import annotations

import heapq
import os
from typing import Iterator, List, Optional, Tuple

from repro.io.format import encode_varint

#: Bytes read per disk access when streaming a run back.
_READ_CHUNK = 1 << 16

#: Maximum runs merged in one pass: more than this many spilled runs on
#: a level first compact group-by-group into intermediate runs, so the
#: k-way merge never holds an unbounded number of open file descriptors.
_MAX_FANIN = 64


def write_run(path: str, tuples) -> int:
    """Write a *sorted* iterable of int tuples to ``path``; returns the
    count.  Streams with bounded buffering, so merging runs into a new
    run never materializes the merged content."""
    count = 0
    out = bytearray()
    with open(path, "wb") as fileobj:
        for tup in tuples:
            for value in tup:
                encode_varint(value, out)
            count += 1
            if len(out) >= _READ_CHUNK:
                fileobj.write(bytes(out))
                out.clear()
        if out:
            fileobj.write(bytes(out))
    return count


def iter_run(path: str, arity: int, count: int) -> Iterator[tuple]:
    """Stream the tuples of a run back in file order (buffered reads)."""
    with open(path, "rb") as fileobj:
        buffer = b""
        pos = 0
        fields: List[int] = []
        produced = 0
        while produced < count:
            # Refill so at least one maximal varint tuple fits.
            if len(buffer) - pos < 10 * arity:
                buffer = buffer[pos:] + fileobj.read(_READ_CHUNK)
                pos = 0
            value = 0
            shift = 0
            while True:
                byte = buffer[pos]
                pos += 1
                value |= (byte & 0x7F) << shift
                if not byte & 0x80:
                    break
                shift += 7
            fields.append(value)
            if len(fields) == arity:
                yield tuple(fields)
                fields = []
                produced += 1


def _merge_group(job: tuple) -> Tuple[int, int]:
    """Merge one group of sorted runs into a new run file.

    ``job`` is ``(out_path, arity, group)`` with ``group`` a list of
    ``(path, count)`` pairs.  Returns ``(count, bytes)`` of the merged
    run.  Module-level (not a method) so a compaction process pool can
    pickle it; it touches nothing but its own input/output files.
    """
    out_path, arity, group = job
    streams = [iter_run(path, arity, count) for path, count in group]
    count = write_run(out_path, heapq.merge(*streams))
    try:
        size = os.path.getsize(out_path)
    except OSError:  # pragma: no cover - stat raced with cleanup
        size = 0
    return count, size


class SortedRunSpiller:
    """Accumulates int tuples; spills sorted runs; yields a merged stream.

    Parameters
    ----------
    arity:
        Tuple length (every added tuple must match).
    chunk:
        Maximum resident tuples before a sorted run spills to disk.
    new_path:
        Zero-argument callable returning a fresh spill-file path (the
        manager's spill store provides it).
    merge_workers:
        Process count for compaction merges; ``0``/``1`` merges
        sequentially in-process.
    """

    def __init__(self, arity: int, chunk: int, new_path, merge_workers: int = 0) -> None:
        self.arity = arity
        self.chunk = max(2, int(chunk))
        self._new_path = new_path
        self.merge_workers = int(merge_workers)
        self._resident: List[tuple] = []
        self._runs: List[Tuple[str, int]] = []  # (path, tuple count)
        self.total = 0
        self.run_bytes = 0
        self.merge_passes = 0
        self.parallel_merge_tasks = 0

    def add(self, tup: tuple) -> None:
        self._resident.append(tup)
        self.total += 1
        if len(self._resident) >= self.chunk:
            self._spill()

    def _spill(self) -> None:
        self._resident.sort()
        path = self._new_path()
        write_run(path, self._resident)
        self._runs.append((path, len(self._resident)))
        self._resident = []
        try:
            self.run_bytes += os.path.getsize(path)
        except OSError:  # pragma: no cover - stat raced with cleanup
            pass

    @property
    def runs_spilled(self) -> int:
        return len(self._runs)

    def _merge_jobs(self, jobs: List[tuple]) -> List[Tuple[int, int]]:
        """Run one compaction pass's group merges, possibly in parallel."""
        if self.merge_workers > 1 and len(jobs) > 1:
            try:
                from concurrent.futures import ProcessPoolExecutor

                workers = min(self.merge_workers, len(jobs))
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    results = list(pool.map(_merge_group, jobs))
                self.parallel_merge_tasks += len(jobs)
                return results
            except Exception:  # pragma: no cover - pool unavailable
                pass  # fall back to the sequential merge below
        return [_merge_group(job) for job in jobs]

    def _compact(self) -> None:
        """Merge runs group-by-group until the final fan-in is bounded.

        One pass partitions the runs into groups of ``_MAX_FANIN`` and
        merges each group into a single wider run; the groups of a pass
        are independent (distinct input and output files), so they can
        run on a process pool (``merge_workers``).
        """
        while len(self._runs) > _MAX_FANIN:
            groups = [
                self._runs[start : start + _MAX_FANIN]
                for start in range(0, len(self._runs), _MAX_FANIN)
            ]
            self._runs = []
            jobs = []
            for group in groups:
                if len(group) == 1:
                    self._runs.append(group[0])
                    continue
                self.merge_passes += 1
                jobs.append((self._new_path(), self.arity, group))
            for (out_path, _arity, group), (count, size) in zip(
                jobs, self._merge_jobs(jobs)
            ):
                self.run_bytes += size
                for old_path, _count in group:
                    try:
                        os.unlink(old_path)
                    except OSError:  # pragma: no cover - best-effort cleanup
                        pass
                self._runs.append((out_path, count))

    def iter_sorted_unique(self) -> Iterator[tuple]:
        """Merge resident chunk + runs into one sorted, deduplicated stream."""
        self._resident.sort()
        self._compact()
        if self._runs:
            streams = [iter_run(path, self.arity, count) for path, count in self._runs]
            merged: Iterator[tuple] = heapq.merge(self._resident, *streams)
        else:
            merged = iter(self._resident)
        previous: Optional[tuple] = None
        for tup in merged:
            if tup != previous:
                previous = tup
                yield tup

    def cleanup(self) -> None:
        """Delete the spilled run files (call after consumption)."""
        for path, _count in self._runs:
            try:
                os.unlink(path)
            except OSError:  # pragma: no cover - best-effort cleanup
                pass
        self._runs = []
        self._resident = []
