"""Bottom-up construction of levelized representations (the reduce core).

:class:`Builder` is where the paper's reduction rules run for the
external-memory backend.  It accumulates node records bottom-up and
enforces, per :meth:`Builder.make` call, exactly the canonical form of
:meth:`repro.core.manager.BBDDManager._make`:

* **R2** — identical children collapse to the child;
* **SV-elimination / R4** — a candidate couple that does not depend on
  its secondary variable re-chains past it (iterated; literal
  degeneration is the terminal case).  The check reads the children's
  *records*, which the builder (or the level-by-level reduce pass
  feeding it) always has, since children are built before parents;
* ``=``-edge regularity normalization, then per-level unique-record
  resolution — **R1** scoped to the level, which is all a canonical
  levelized file needs;

:meth:`Builder.finish` then prunes to the reachable sub-DAG and assigns
the canonical bottom-up numbering (see
:func:`repro.xmem.rep.canonicalize`), yielding an immutable
:class:`~repro.xmem.rep.Levelized`.

All edges in and out of the builder are packed refs ``(id << 1) | attr``
with id 0 the 1-sink — the file format's edge encoding used live.
"""

from __future__ import annotations

import weakref
from typing import Dict, List, Tuple

from repro.core.exceptions import BBDDError
from repro.core.node import SV_ONE

from repro.xmem.rep import Levelized, canonicalize


def _release_builder(store, box: dict) -> None:
    """Finalizer: return a collected builder's records to the store."""
    store.resident -= box.pop("count", 0)


class Builder:
    """Accumulates canonical node records for one operation's output."""

    def __init__(self, manager) -> None:
        self._manager = manager
        self._store = manager._store
        self._position = manager.order.position
        self._var_at = manager.order.order  # position -> variable index
        self._records: List[Tuple[int, int, int, int]] = []  # (pos, svd, neq, eq)
        self._unique: Dict[Tuple[int, int, int, int], int] = {}
        # Residency accounting shared with a GC finalizer, so builders
        # held open across calls (e.g. by a migrator) release their
        # records even without an explicit dispose().
        self._box = {"count": 0}
        self._done = False
        weakref.finalize(self, _release_builder, self._store, self._box)

    # -- container protocol (shared with Levelized) ----------------------

    def full_record(self, node_id: int) -> Tuple[int, int, int, int]:
        return self._records[node_id - 1]

    def pos_of(self, node_id: int) -> int:
        return self._records[node_id - 1][0]

    @property
    def size(self) -> int:
        return len(self._records)

    # -- construction ----------------------------------------------------

    def _insert(self, key: Tuple[int, int, int, int]) -> int:
        node_id = self._unique.get(key)
        if node_id is None:
            self._records.append(key)
            node_id = len(self._records)
            self._unique[key] = node_id
            self._box["count"] += 1
            self._store.note(1)
            if not node_id & 0x3F:
                # Opportunistic mid-operation rebalance: spill idle
                # finished reps while the output grows (operand reps stay
                # hot in the LRU order, so they are spilled last).
                self._manager._rebalance()
        return node_id

    def literal(self, var: int) -> int:
        """Packed (regular) ref of the R4 literal node for ``var``."""
        return self._insert((self._position(var), 0, 0, 0)) << 1

    def make(self, pv: int, sv: int, d: int, e: int) -> int:
        """Get-or-create node ``(pv, sv, !=-child d, =-child e)``.

        ``d``/``e`` are packed refs into this builder; the result is a
        packed ref.  Applies R2, the SV-elimination cascade (R4 as its
        terminal case) and the ``=``-edge regularity normalization —
        the same rules, in the same order, as the in-core ``_make``.
        """
        position = self._position
        var_at = self._var_at
        records = self._records
        while True:
            if d == e:
                return e  # R2
            if sv == SV_ONE:
                # Boundary couple: children must be constants; the node
                # degenerates to the literal of pv (attr of the =-edge
                # rides out on the result).
                if d >> 1 or e >> 1:
                    raise BBDDError("boundary-couple children must be constants")
                return self.literal(pv) | (e & 1)
            dn = d >> 1
            en = e >> 1
            if dn and en:
                sv_pos = position(sv)
                dp, dsvd, dneq, deq = records[dn - 1]
                ep, esvd, eneq, eeq = records[en - 1]
                if dp == sv_pos and ep == sv_pos:
                    # Both children rooted at sv: the candidate may not
                    # depend on sv at all (Shannon-view equality on the
                    # packed records).
                    da = d & 1
                    ea = e & 1
                    if dsvd == 0 and esvd == 0:
                        # Both the literal of sv; d != e forces opposite
                        # attributes — rule R4 proper.
                        return self.literal(pv) | ea
                    if (
                        dsvd
                        and esvd
                        and dsvd == esvd
                        and (dneq ^ da) == (eeq ^ ea)
                        and (deq ^ da) == (eneq ^ ea)
                    ):
                        # Re-chain past sv: f = (pv = t) ? A : B with
                        # A/B the children of d.
                        sv = var_at[dp + dsvd]
                        d, e = deq ^ da, dneq ^ da
                        continue
            break
        attr = e & 1
        if attr:
            # Normalize: =-edges are stored regular; complement both
            # children and return a complemented external ref.
            d ^= 1
            e ^= 1
        pos = self._position(pv)
        sv_delta = self._position(sv) - pos
        if sv_delta < 1:
            raise BBDDError(
                f"couple (v{pv}, v{sv}) inconsistent with the variable order"
            )
        node_id = self._insert((pos, sv_delta, d, e))
        return (node_id << 1) | attr

    # -- importing finished representations ------------------------------

    def import_ref(self, rep, ref: int, memo: Dict[int, int]) -> int:
        """Copy the sub-DAG of packed ref ``ref`` (in ``rep``) into this
        builder; returns the equivalent builder ref.  ``memo`` maps rep
        node ids to builder refs and may be shared across calls for one
        ``rep`` to keep the walk linear.
        """
        node_id = ref >> 1
        if node_id == 0:
            return ref
        var_at = self._var_at
        stack = [node_id]
        while stack:
            top = stack[-1]
            if top in memo:
                stack.pop()
                continue
            pos, sv_delta, neq_ref, eq_ref = rep.full_record(top)
            if sv_delta == 0:
                memo[top] = self.literal(var_at[pos])
                stack.pop()
                continue
            pending = [
                child
                for child in (neq_ref >> 1, eq_ref >> 1)
                if child and child not in memo
            ]
            if pending:
                stack.extend(pending)
                continue
            d = memo[neq_ref >> 1] ^ (neq_ref & 1) if neq_ref >> 1 else neq_ref
            e = memo[eq_ref >> 1] ^ (eq_ref & 1) if eq_ref >> 1 else eq_ref
            memo[top] = self.make(var_at[pos], var_at[pos + sv_delta], d, e)
            stack.pop()
        return memo[node_id] ^ (ref & 1)

    # -- lifecycle -------------------------------------------------------

    def snapshot(self, roots: List[int]):
        """Extract the sub-DAG of ``roots`` as a canonical representation
        *without* consuming the builder — callers that materialize
        several functions from one shared construction (migrators)
        snapshot per root and dispose once at the end.
        """
        levels, new_roots = canonicalize(self.full_record, roots)
        rep = Levelized(self._store, levels, new_roots)
        return rep, new_roots

    def finish(self, roots: List[int]):
        """Prune + canonically renumber; returns ``(rep, new_roots)``.

        ``roots`` are packed builder refs; refs to the sink pass
        through unchanged (with no rep nodes of their own).
        """
        rep, new_roots = self.snapshot(roots)
        self.dispose()
        return rep, new_roots

    def dispose(self) -> None:
        """Release residency accounting (idempotent; also for aborts)."""
        if not self._done:
            self._done = True
            self._store.note(-self._box["count"])
            self._box["count"] = 0
            self._records = []
            self._unique = {}
