"""The external-memory BBDD manager (``repro.open(backend="xmem")``).

:class:`XmemManager` implements the :class:`repro.api.base.DDManager`
edge protocol over *levelized node files* instead of a pointer heap:
every function is an immutable :class:`~repro.xmem.rep.Levelized`
representation (the record shape of the :mod:`repro.io` binary format,
kept live), manipulation runs as level-by-level streaming sweeps
(:mod:`repro.xmem.engine`), and a configurable ``node_budget`` bounds
how many node records stay resident — completed representations spill
to disk least-recently-used and reload transparently on access.  The
shared :class:`~repro.api.base.FunctionBase` surface therefore comes
for free; :class:`XmemFunction` only redefines equality/hashing, which
is structural here (canonical signatures) because separately computed
representations do not share node identity.

What the budget does and does not bound: *node records* — the dominant
term of a decision-diagram working set — are budgeted and spilled
(both finished representations and each operation's request queues,
which overflow to sorted varint runs).  Per-operation transient
bookkeeping (request keys in flight, the reduce pass's result map) is
RAM-resident in this implementation, proportional to one operation's
product size, not to the forest.

Because the manager is a different scaling point, two protocol
conveniences are intentionally absent: dynamic reordering
(:meth:`XmemManager.sift` raises — representations are canonical for
one fixed order) and cross-function node sharing
(:meth:`XmemManager.count_nodes` sums per-representation reachable
counts).
"""

from __future__ import annotations

import shutil
import weakref
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.api.base import DDManager, FunctionBase, install_function_helpers
from repro.core.exceptions import BBDDError, VariableError
from repro.core.operations import OP_AND, OP_OR, op_from_name
from repro.core.order import ChainVariableOrder

from repro.xmem.builder import Builder
from repro.xmem.engine import apply_refs, ite_refs, restrict_replay
from repro.xmem.rep import Levelized, SpillStore


class XmemNode:
    """Root handle of (a node in) a levelized representation.

    The protocol's edge endpoint: ``(XmemNode, attr)`` tuples are what
    the shared function wrapper carries.  ``uid`` is interned from the
    node's canonical signature, so two handles denote the same function
    exactly when their uids are equal — that is what keeps memoized
    protocol walks (``to_expr``, ``rebuild_function``) linear in the
    number of *distinct* subfunctions.
    """

    __slots__ = ("manager", "rep", "nid", "_uid", "__weakref__")

    def __init__(self, manager, rep: Optional[Levelized], nid: int) -> None:
        self.manager = manager
        self.rep = rep
        self.nid = nid
        self._uid: Optional[int] = None

    @property
    def is_sink(self) -> bool:
        return self.rep is None

    @property
    def uid(self) -> int:
        if self.rep is None:
            return 0
        if self._uid is None:
            self._uid = self.manager._intern_uid(self.rep.digest(self.nid))
        return self._uid

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.rep is None:
            return "<xmem-sink-1>"
        return f"<xmem-node rep={id(self.rep):#x} id={self.nid}>"


class XmemFunction(FunctionBase):
    """Function handle over the external-memory backend.

    Identical surface to every other backend's functions; equality and
    hashing are structural (canonical-signature uids) because levelized
    representations do not share node identity across operations.
    """

    __slots__ = ()

    def __eq__(self, other) -> bool:
        if not isinstance(other, FunctionBase):
            return NotImplemented
        if self.manager is not other.manager or self.attr != other.attr:
            return False
        return self.node.uid == other.node.uid

    def __hash__(self) -> int:
        return hash((id(self.manager), self.node.uid, self.attr))

    def equivalent(self, other) -> bool:
        other_edge = self._coerce(other)
        return self.attr == other_edge[1] and self.node.uid == other_edge[0].uid


class XmemManager(DDManager):
    """Manager for a forest of external-memory (levelized) BBDDs.

    Parameters
    ----------
    variables:
        Number of variables or a sequence of distinct names.
    node_budget:
        Target number of node records kept resident across all live
        representations; crossing it spills least-recently-used
        representations to disk (they reload transparently).
    request_chunk:
        Per-level in-RAM request count of the apply sweeps before the
        level's request queue spills to sorted varint runs (defaults to
        ``max(1024, node_budget // 4)``).
    spill_dir:
        Directory for spill files (default: a fresh temporary directory,
        removed when the manager is garbage collected).
    merge_workers:
        Process count for parallel run-compaction merges during apply
        sweeps (``0``, the default, merges sequentially in-process).
    """

    backend = "xmem"
    #: Dynamic reordering is not available on this backend (see sift()).
    supports_sift = False

    def __init__(
        self,
        variables: Union[int, Sequence[str]],
        node_budget: int = 1 << 20,
        request_chunk: Optional[int] = None,
        spill_dir: Optional[str] = None,
        merge_workers: int = 0,
    ) -> None:
        if isinstance(variables, int):
            names = [f"x{i}" for i in range(variables)]
        else:
            names = list(variables)
        if len(set(names)) != len(names):
            raise VariableError("variable names must be distinct")
        self._names: List[str] = names
        self._index: Dict[str, int] = {n: i for i, n in enumerate(names)}
        self._order = ChainVariableOrder(range(len(names)))
        if node_budget < 1:
            raise BBDDError("node_budget must be positive")
        self.node_budget = int(node_budget)
        self._request_chunk = (
            int(request_chunk)
            if request_chunk is not None
            else max(1024, self.node_budget // 4)
        )
        self._merge_workers = int(merge_workers)
        self._store = SpillStore(spill_dir)
        if spill_dir is None:
            # The store creates its temp dir lazily; clean whatever it
            # made when the manager goes away.
            weakref.finalize(self, _cleanup_store_dir, self._store)
        self._reps: "weakref.WeakSet[Levelized]" = weakref.WeakSet()
        self._sink = XmemNode(self, None, 0)
        self._literal_reps: Dict[int, Levelized] = {}
        self._sig_uids: Dict[bytes, int] = {}
        self._next_uid = 0

        from repro import obs  # late: avoids import cycles at package init

        self._trace_state = obs.trace.STATE
        obs.track(self)

    # ------------------------------------------------------------------
    # identifiers, variables, order
    # ------------------------------------------------------------------

    @property
    def num_vars(self) -> int:
        return len(self._names)

    @property
    def var_names(self) -> tuple:
        return tuple(self._names)

    def var_index(self, var: Union[int, str]) -> int:
        if isinstance(var, str):
            try:
                return self._index[var]
            except KeyError:
                raise VariableError(f"unknown variable {var!r}") from None
        if not 0 <= var < len(self._names):
            raise VariableError(f"variable index {var} out of range")
        return var

    def var_name(self, index: int) -> str:
        return self._names[index]

    @property
    def order(self) -> ChainVariableOrder:
        return self._order

    def current_order(self) -> tuple:
        return tuple(self._names[v] for v in self._order.order)

    def sift(self, **kwargs):
        raise BBDDError(
            "the xmem backend keeps canonical levelized files for one fixed "
            "variable order and does not support dynamic reordering; "
            "migrate to an in-memory backend to sift"
        )

    # ------------------------------------------------------------------
    # handles, terminals, literals
    # ------------------------------------------------------------------

    def _intern_uid(self, digest: bytes) -> int:
        uid = self._sig_uids.get(digest)
        if uid is None:
            self._next_uid += 1
            uid = self._next_uid
            self._sig_uids[digest] = uid
        return uid

    def _handle(self, rep: Levelized, nid: int) -> XmemNode:
        node = rep._handles.get(nid)
        if node is None:
            node = XmemNode(self, rep, nid)
            rep._handles[nid] = node
        return node

    def _register(self, rep: Levelized) -> None:
        self._reps.add(rep)

    @property
    def true_edge(self):
        return (self._sink, False)

    @property
    def false_edge(self):
        return (self._sink, True)

    def literal_edge(self, var: Union[int, str], positive: bool = True):
        index = self.var_index(var)
        rep = self._literal_reps.get(index)
        if rep is None:
            pos = self._order.position(index)
            rep = Levelized(self._store, [(pos, [(0, 0, 0)])], [1 << 1])
            self._literal_reps[index] = rep
            self._register(rep)
        return (self._handle(rep, 1), not positive)

    # ------------------------------------------------------------------
    # operations (streaming sweeps)
    # ------------------------------------------------------------------

    def _unpack(self, edge) -> Tuple[Optional[Levelized], int]:
        node, attr = edge
        if node.rep is None:
            return (None, 1 if attr else 0)
        return (node.rep, (node.nid << 1) | bool(attr))

    def _edge_from(self, builder: Builder, ref: int):
        if ref >> 1 == 0:
            builder.dispose()
            return (self._sink, bool(ref & 1))
        rep, roots = builder.finish([ref])
        self._register(rep)
        root = roots[0]
        return (self._handle(rep, root >> 1), bool(root & 1))

    def _run_op(self, fn):
        traced = self._trace_state.enabled
        if traced:
            from time import perf_counter

            start = perf_counter()
        builder = Builder(self)
        try:
            ref = fn(builder)
            edge = self._edge_from(builder, ref)
        finally:
            builder.dispose()
        self._rebalance()
        if traced:
            from repro.obs import trace

            trace.record("sweep", perf_counter() - start, backend="xmem")
        return edge

    def apply_edges(self, f, g, op: int):
        rep_f, ref_f = self._unpack(f)
        rep_g, ref_g = self._unpack(g)
        return self._run_op(
            lambda builder: apply_refs(
                self, builder, rep_f, ref_f, rep_g, ref_g, op
            )
        )

    def apply_named(self, f, g, name: str):
        return self.apply_edges(f, g, op_from_name(name))

    def and_edges(self, f, g):
        return self.apply_edges(f, g, OP_AND)

    def or_edges(self, f, g):
        return self.apply_edges(f, g, OP_OR)

    @staticmethod
    def not_edge(f):
        return (f[0], not f[1])

    def ite_edges(self, f, g, h):
        rep_f, ref_f = self._unpack(f)
        rep_g, ref_g = self._unpack(g)
        rep_h, ref_h = self._unpack(h)
        return self._run_op(
            lambda builder: ite_refs(
                self, builder, rep_f, ref_f, rep_g, ref_g, rep_h, ref_h
            )
        )

    def restrict_edge(self, edge, var, value: bool):
        index = self.var_index(var)
        node, attr = edge
        if node.rep is None or index not in node.rep.support_of(
            node.nid, self._order.order
        ):
            return edge
        rep, ref = self._unpack(edge)
        return self._run_op(
            lambda builder: restrict_replay(
                self, builder, rep, ref, index, bool(value)
            )
        )

    def compose_edge(self, edge, var, g):
        index = self.var_index(var)
        f1 = self.restrict_edge(edge, index, True)
        f0 = self.restrict_edge(edge, index, False)
        return self.ite_edges(g, f1, f0)

    def quantify_edge(self, edge, variables, forall: bool = False):
        if isinstance(variables, (int, str)):
            variables = (variables,)
        op = OP_AND if forall else OP_OR
        for var in tuple(variables):
            index = self.var_index(var)
            node, _attr = edge
            if node.rep is None or index not in node.rep.support_of(
                node.nid, self._order.order
            ):
                continue
            edge = self.apply_edges(
                self.restrict_edge(edge, index, False),
                self.restrict_edge(edge, index, True),
                op,
            )
        return edge

    # ------------------------------------------------------------------
    # semantics and structure queries (streaming passes)
    # ------------------------------------------------------------------

    def evaluate_edge(self, edge, values: Dict[int, bool]) -> bool:
        node, attr = edge
        attr = bool(attr)
        if node.rep is None:
            return not attr
        rep = node.rep
        var_at = self._order.order
        nid = node.nid
        while nid:
            pos, sv_delta, neq_ref, eq_ref = rep.full_record(nid)
            if sv_delta == 0:
                take_neq = not values[var_at[pos]]
                ref = 1 if take_neq else 0
            else:
                take_neq = values[var_at[pos]] != values[var_at[pos + sv_delta]]
                ref = neq_ref if take_neq else eq_ref
            attr ^= bool(ref & 1)
            nid = ref >> 1
        return not attr

    def batch_stream(self, edge):
        """Top-down level stream for the batch cohort sweeps (repro.serve).

        Level blocks are pulled in shallowest-first (node ids strictly
        decrease along edges, so parents are always emitted before
        children) and *dropped behind the sweep* whenever residency
        exceeds the budget — a block already processed is never needed
        again within one sweep, so an arbitrarily large query batch
        never faults the residency budget on node records.
        """
        node, _attr = edge
        if node.rep is None:
            return None
        return (node.nid, self._iter_cohort_items(node.rep))

    def _iter_cohort_items(self, rep: Levelized):
        var_at = self._order.order
        budget = self.node_budget
        store = self._store
        for index in range(len(rep.levels) - 1, -1, -1):
            block = rep.levels[index]
            if block.count == 0:
                continue
            records = rep._ensure(index)
            base = rep.starts[index]
            pos = block.position
            pv = var_at[pos]
            for offset in range(block.count):
                sv_delta, neq_ref, eq_ref = records[offset]
                nid = base + offset
                if sv_delta == 0:
                    # Literal record: the ``=``-edge is the regular
                    # sink, the ``!=``-edge the complemented one.
                    yield (nid, pv, None, None, False, None, None, True, None)
                else:
                    neq_child = neq_ref >> 1
                    eq_child = eq_ref >> 1
                    yield (
                        nid,
                        pv,
                        var_at[pos + sv_delta],
                        neq_child if neq_child else None,
                        bool(neq_ref & 1),
                        var_at[rep.pos_of(neq_child)] if neq_child else None,
                        eq_child if eq_child else None,
                        bool(eq_ref & 1),
                        var_at[rep.pos_of(eq_child)] if eq_child else None,
                    )
            if store.resident > budget:
                rep.spill_block(index)

    def sat_count_edge(self, edge) -> int:
        node, attr = edge
        n = self.num_vars
        if node.rep is None:
            return 0 if attr else (1 << n)
        rep = node.rep
        counts = [0] * (rep.size + 1)
        for nid, pos, sv_delta, neq_ref, eq_ref in rep.iter_records():
            if sv_delta == 0:
                counts[nid] = 1 << (n - pos - 1)
                continue
            q_sv = pos + sv_delta
            total = 0
            for ref in (neq_ref, eq_ref):
                child = ref >> 1
                if child == 0:
                    sub = 0 if ref & 1 else (1 << (n - q_sv))
                else:
                    q = rep.pos_of(child)
                    sub = counts[child]
                    if ref & 1:
                        sub = (1 << (n - q)) - sub
                    sub <<= q - q_sv
                total += sub
            counts[nid] = total << (q_sv - (pos + 1))
        p = rep.pos_of(node.nid)
        count = counts[node.nid]
        if attr:
            count = (1 << (n - p)) - count
        return count << p

    def sat_one_edge(self, edge) -> Optional[Dict[int, bool]]:
        node, attr = edge
        attr = bool(attr)
        if node.rep is None:
            return {} if not attr else None
        rep = node.rep
        var_at = self._order.order
        nid = node.nid
        path: List[tuple] = []
        while True:
            pos, sv_delta, neq_ref, eq_ref = rep.full_record(nid)
            pv = var_at[pos]
            if sv_delta == 0:
                branches = ((0, attr ^ True, "0", None), (0, attr, "1", None))
            else:
                sv = var_at[pos + sv_delta]
                branches = (
                    (neq_ref >> 1, attr ^ bool(neq_ref & 1), "!=", sv),
                    (eq_ref >> 1, attr ^ bool(eq_ref & 1), "==", sv),
                )
            descend = None
            done = False
            for child, child_attr, rel, sv_on_path in branches:
                if child == 0:
                    if not child_attr:
                        path.append((pv, sv_on_path, rel))
                        done = True
                        break
                elif descend is None:
                    descend = (child, child_attr, rel, sv_on_path)
            if done:
                break
            if descend is None:  # pragma: no cover - canonical reps are non-constant
                return None
            child, attr, rel, sv_on_path = descend
            path.append((pv, sv_on_path, rel))
            nid = child
        values: Dict[int, bool] = {}
        # Resolve deepest-first so each couple's partner is already fixed
        # (or known free) when needed — same as the in-core manager.
        for pv, sv, rel in reversed(path):
            if rel == "0" or rel == "1":
                values[pv] = rel == "1"
            else:
                if sv not in values:
                    values[sv] = False
                values[pv] = (not values[sv]) if rel == "!=" else values[sv]
        return values

    def support_edge(self, edge) -> frozenset:
        node, _attr = edge
        if node.rep is None:
            return frozenset()
        return node.rep.support_of(node.nid, self._order.order)

    def root_var(self, edge) -> int:
        node, _attr = edge
        return self._order.order[node.rep.pos_of(node.nid)]

    def count_nodes(self, edges: Iterable) -> int:
        by_rep: Dict[int, Tuple[Levelized, set]] = {}
        for node, _attr in edges:
            if node.rep is None:
                continue
            entry = by_rep.get(id(node.rep))
            if entry is None:
                entry = by_rep[id(node.rep)] = (node.rep, set())
            entry[1].add(node.nid)
        total = 0
        for rep, ids in by_rep.values():
            if ids == {ref >> 1 for ref in rep.roots if ref >> 1}:
                total += rep.size  # finished reps are pruned to their roots
            else:
                total += len(rep.reachable_ids(ids))
        return total

    # ------------------------------------------------------------------
    # memory management: residency budget and spilling
    # ------------------------------------------------------------------

    def _rebalance(self) -> None:
        """Spill least-recently-used representations down to the budget."""
        store = self._store
        if store.resident <= self.node_budget:
            return
        reps = sorted(
            (rep for rep in self._reps if rep.resident_count),
            key=lambda rep: rep.last_use,
        )
        for rep in reps:
            if store.resident <= self.node_budget:
                break
            rep.spill()

    def acquire_ref(self, node: XmemNode) -> None:
        """Representations are owned by their handles (plain refcounting)."""

    def release_ref(self, node: XmemNode) -> None:
        """Dropping the last handle lets CPython reclaim the rep; its
        finalizer releases residency and deletes spill files."""

    def inc_ref(self, edge) -> None:
        pass

    def dec_ref(self, edge) -> None:
        pass

    def defer_gc(self):
        import contextlib

        return contextlib.nullcontext(self)

    def size(self) -> int:
        """Total live node records across representations (resident + spilled)."""
        return sum(rep.size for rep in self._reps)

    @property
    def peak_resident(self) -> int:
        return self._store.peak_resident

    def resident_blocks(self) -> int:
        """Level blocks currently resident in RAM across representations."""
        return sum(
            1
            for rep in self._reps
            for block in rep.levels
            if block.records is not None and block.count
        )

    def stats(self) -> dict:
        store = self._store
        return {
            "backend": self.backend,
            "node_budget": self.node_budget,
            "request_chunk": self._request_chunk,
            "live_nodes": self.size(),
            "resident_nodes": store.resident,
            "resident_blocks": self.resident_blocks(),
            "peak_resident": store.peak_resident,
            "spilled_nodes": store.spilled_nodes,
            "spill_writes": store.spill_writes,
            "spill_bytes": store.spill_bytes,
            "level_loads": store.level_loads,
            "request_runs_spilled": store.runs_spilled,
            "merge_passes": store.merge_passes,
            "merge_workers": self._merge_workers,
            "parallel_merge_tasks": store.parallel_merge_tasks,
            "reps": len(self._reps),
        }

    def table_stats(self) -> dict:
        return self.stats()

    def collect_metrics(self, registry) -> None:
        """Sample the spill store's counters into an obs registry.

        Pull-based observability hook (see :mod:`repro.obs`): spill
        accounting stays on the store's native counters and is mapped
        onto the catalogued ``repro_xmem_*`` families at snapshot time.
        """
        from repro.obs.catalog import family

        store = self._store
        family(registry, "repro_xmem_spill_bytes_total").inc(store.spill_bytes)
        family(registry, "repro_xmem_level_spills_total").inc(
            store.spill_writes
        )
        family(registry, "repro_xmem_spilled_nodes_total").inc(
            store.spilled_nodes
        )
        family(registry, "repro_xmem_level_loads_total").inc(store.level_loads)
        family(registry, "repro_xmem_request_runs_spilled_total").inc(
            store.runs_spilled
        )
        family(registry, "repro_xmem_merge_passes_total").inc(
            store.merge_passes
        )
        family(registry, "repro_xmem_parallel_merge_tasks_total").inc(
            store.parallel_merge_tasks
        )
        family(registry, "repro_xmem_resident_nodes").inc(store.resident)
        family(registry, "repro_xmem_resident_blocks").inc(
            self.resident_blocks()
        )
        family(registry, "repro_xmem_peak_resident_nodes").inc(
            store.peak_resident
        )
        family(registry, "repro_xmem_live_nodes").inc(self.size())

    # ------------------------------------------------------------------
    # persistence (native: representations *are* the file format)
    # ------------------------------------------------------------------

    def dump(self, functions, target, compress: bool = False) -> None:
        """Write a forest to ``target`` in the levelized binary format.

        The output is a standard ``.bbdd`` container (flags 0, or the
        v2 ``FLAG_COMPRESSED`` container with ``compress=True``):
        representations are merged into one shared id space — per-level
        unique records re-share structure across functions — and the
        blocks stream out unchanged, so the dump interoperates with the
        in-core BBDD loader and vice versa.
        """
        from repro.xmem.convert import dump_forest

        dump_forest(self, functions, target, compress=compress)

    def load(self, source, rename=None) -> dict:
        """Load a ``.bbdd`` dump *into this manager*; ``{name: function}``.

        The dump's variables (after ``rename``) must exist here; records
        replay through the builder with on-the-fly re-reduction (R1/R2/
        R4), re-canonicalizing when the relative order differs.
        """
        from repro.xmem.convert import load_forest

        return load_forest(self, source, rename=rename)

    # ------------------------------------------------------------------
    # debugging
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Validate the canonical-form invariants of every live rep."""
        from repro.core.exceptions import InvariantViolation

        for rep in self._reps:
            for nid, pos, sv_delta, neq_ref, eq_ref in rep.iter_records():
                if sv_delta == 0:
                    if neq_ref or eq_ref:
                        raise InvariantViolation(f"malformed literal record {nid}")
                    continue
                if eq_ref & 1:
                    raise InvariantViolation(f"complemented =-edge on node {nid}")
                if neq_ref == eq_ref:
                    raise InvariantViolation(f"R2 violation on node {nid}")
                sv_pos = pos + sv_delta
                for ref in (neq_ref, eq_ref):
                    child = ref >> 1
                    if child:
                        if child >= nid:
                            raise InvariantViolation(
                                f"forward reference {nid} -> {child}"
                            )
                        if rep.pos_of(child) < sv_pos:
                            raise InvariantViolation(
                                f"child order violation {nid} -> {child}"
                            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        store = self._store
        return (
            f"<XmemManager vars={len(self._names)} live={self.size()} "
            f"resident={store.resident}/{self.node_budget}>"
        )


def _cleanup_store_dir(store: SpillStore) -> None:
    if store._dir is not None:
        shutil.rmtree(store._dir, ignore_errors=True)


install_function_helpers(XmemManager, XmemFunction)


def open_xmem(variables, **kwargs) -> XmemManager:
    """Factory registered as the ``"xmem"`` backend."""
    return XmemManager(variables, **kwargs)


# Mappings are accepted by dump(); re-exported for convert's validation.
ForestLike = Union[FunctionBase, Mapping, Sequence]
