"""repro.xmem — the external-memory levelized BBDD backend.

Represents every function as a *levelized node file* (the record shape
of the :mod:`repro.io` binary format, kept live and spillable to disk)
and implements manipulation as level-by-level streaming sweeps in the
style of Sølvsten & van de Pol's external-memory BDD package: a
top-down product-request pass whose per-level queues overflow to sorted
varint runs (:mod:`repro.xmem.runs`), then a bottom-up reduce pass
applying the paper's R1/R2/R4 rules per level
(:mod:`repro.xmem.builder`).  A configurable ``node_budget`` bounds
resident node records; completed representations spill
least-recently-used and reload transparently.

Open it through the unified front end::

    manager = repro.open(backend="xmem", vars=["a", "b"], node_budget=100_000)

The manager implements the :class:`repro.api.base.DDManager` edge
protocol, so the whole shared function surface (operators, ``ite``,
``restrict``/``compose``/quantification, ``let``, ``sat_one``,
``add_expr``/``to_expr``, ``dump``) works unchanged; dumps are standard
``.bbdd`` containers that interoperate with the in-core BBDD loader.
"""

from repro.xmem.builder import Builder
from repro.xmem.convert import (
    ToXmemMigrator,
    XmemForestRebuilder,
    XmemToBBDDMigrator,
    dump_forest,
    load_forest,
    loads_forest,
)
from repro.xmem.manager import XmemFunction, XmemManager, XmemNode, open_xmem
from repro.xmem.rep import Levelized, SpillStore
from repro.xmem.runs import SortedRunSpiller

__all__ = [
    "XmemManager",
    "XmemFunction",
    "XmemNode",
    "open_xmem",
    "Levelized",
    "SpillStore",
    "Builder",
    "SortedRunSpiller",
    "XmemForestRebuilder",
    "ToXmemMigrator",
    "XmemToBBDDMigrator",
    "dump_forest",
    "load_forest",
    "loads_forest",
]
