"""Fig. 1 bench: biconditional expansion semantics + evaluation throughput.

Validates Eq. 1 — ``f = (v xor w) f_neq + (v xnor w) f_eq`` — on every
node of randomly built BBDDs, then micro-benchmarks path evaluation (the
operation Fig. 1's node semantics defines).
"""

import random

from _metrics import record_metric
from repro.core import BBDDManager
from repro.core.node import SV_ONE
from repro.core.reorder import from_truth_table
from repro.core.traversal import evaluate, reachable_nodes


def _expansion_holds(manager, index) -> bool:
    """Check Eq. 1 pointwise over the node's support variables."""
    n = manager.num_vars
    node = manager.node_view(index)
    rng = random.Random(index)
    for _ in range(16):
        values = {v: bool(rng.getrandbits(1)) for v in range(n)}
        lhs = evaluate(manager, index, values)
        if values[node.pv] != values[node.sv]:
            rhs = evaluate(manager, node.neq_edge, values)
        else:
            rhs = evaluate(manager, node.eq_edge, values)
        if lhs != rhs:
            return False
    return True


def test_fig1_expansion_validation(benchmark):
    rng = random.Random(14)
    managers = []
    for _ in range(12):
        n = rng.randint(3, 7)
        m = BBDDManager(n)
        fs = [
            m.function(from_truth_table(m, rng.getrandbits(1 << n)))
            for _ in range(3)
        ]
        managers.append((m, fs))

    def validate():
        checked = 0
        for m, fs in managers:
            for index in reachable_nodes(m, [f.edge for f in fs]):
                if m._sv[index] != SV_ONE:
                    assert _expansion_holds(m, index)
                    checked += 1
        return checked

    checked = benchmark.pedantic(validate, rounds=1, iterations=1)
    benchmark.extra_info["nodes_checked"] = checked
    record_metric("fig1_expansion", "nodes_checked", checked, "nodes")
    assert checked > 0


def test_fig1_evaluation_throughput(benchmark):
    n = 16
    m = BBDDManager(n)
    vs = m.variables()
    f = vs[0]
    for v in vs[1:]:
        f = (f ^ v) | (f & v)
    rng = random.Random(15)
    vectors = [
        {v: bool(rng.getrandbits(1)) for v in range(n)} for _ in range(2000)
    ]
    edge = f.edge

    def run():
        return sum(evaluate(m, edge, vec) for vec in vectors)

    benchmark(run)
    record_metric(
        "fig1_expansion",
        "eval_per_s",
        round(len(vectors) / benchmark.stats.stats.mean),
        "evals/s",
    )
