"""Chain-reduction and compressed-codec benchmarks (``BENCH_chain.json``).

Two gates introduced with the chain-reduced node kinds:

* **Node reduction** — building the MCNC/ISCAS registry circuits with
  ``chain_reduce=True`` must never grow a forest and must strictly
  shrink the suite total (the parity-tower circuits are where spans
  bite; most MCNC circuits already absorb their XOR structure into
  biconditional couples, so per-circuit equality is expected there).
* **Compressed codec** — the v2 ``FLAG_COMPRESSED`` container must be
  at least 25 % smaller per node than the plain codec's ~4.7 B/node
  baseline on the largest measured forest, with a bit-exact round
  trip (same node count, canonical plain re-dump identical).
"""

import pytest

from _metrics import record_metric
from repro import io as rio
from repro.circuits.registry import TABLE1_ROWS
from repro.network.build import build

_ROWS = {row.name: row for row in TABLE1_ROWS}

#: MCNC two-level/random-logic rows plus ISCAS'85 netlists — the
#: fast-profile mix bench_io uses, extended with the XOR-rich rows
#: (parity, z4ml) where chain reduction actually fires.
_CIRCUITS = ["parity", "z4ml", "9symml", "comp", "count", "my_adder", "C499", "C1355"]

#: The plain codec's historical footprint on registry forests; the
#: compressed gate is measured against it.
_PLAIN_BASELINE_B_PER_NODE = 4.7


def _forests(name):
    network = _ROWS[name].build(full=False)
    plain_manager, plain_fns = build(network, backend="bbdd")
    chain_manager, chain_fns = build(network, backend="bbdd", chain_reduce=True)
    return plain_manager, plain_fns, chain_manager, chain_fns


def test_chain_node_reduction(benchmark):
    """chain_reduce never grows a forest and strictly shrinks the suite."""

    def sweep():
        totals = {"plain": 0, "chain": 0}
        per_circuit = []
        for name in _CIRCUITS:
            pm, pf, cm, cf = _forests(name)
            plain = pm.node_count(list(pf.values()))
            chain = cm.node_count(list(cf.values()))
            totals["plain"] += plain
            totals["chain"] += chain
            per_circuit.append((name, plain, chain))
        return totals, per_circuit

    totals, per_circuit = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for name, plain, chain in per_circuit:
        assert chain <= plain, f"{name}: chain {chain} > plain {plain}"
        record_metric("chain", f"{name}_plain_nodes", plain, "nodes")
        record_metric("chain", f"{name}_chain_nodes", chain, "nodes")
    assert totals["chain"] < totals["plain"], totals
    record_metric("chain", "total_plain_nodes", totals["plain"], "nodes")
    record_metric("chain", "total_chain_nodes", totals["chain"], "nodes")
    record_metric(
        "chain",
        "node_reduction_pct",
        round(100.0 * (1 - totals["chain"] / totals["plain"]), 2),
        "%",
    )
    benchmark.extra_info.update(totals)


def test_compressed_codec_size(benchmark, capsys):
    """v2 compressed dumps beat the plain baseline by >= 25 % per node."""
    name = "C1355"  # largest forest in the fast-profile mix
    pm, pf, _cm, _cf = _forests(name)
    nodes = pm.node_count(list(pf.values()))

    def dumps():
        plain = rio.dumps(pm, pf)
        compressed = rio.dumps(pm, pf, compress=True)
        return plain, compressed

    plain, compressed = benchmark.pedantic(dumps, rounds=1, iterations=1)

    # Bit-exact round trip: the compressed container reloads to the
    # same canonical forest, whose plain re-dump is byte-identical.
    manager, reloaded = rio.loads(compressed)
    assert manager.node_count(list(reloaded.values())) == nodes
    assert rio.dumps(manager, reloaded) == plain

    plain_bpn = len(plain) / nodes
    compressed_bpn = len(compressed) / nodes
    with capsys.disabled():
        print(
            f"\ncompressed codec: {name}, {nodes} nodes, "
            f"plain {plain_bpn:.2f} B/node, compressed {compressed_bpn:.2f} "
            f"B/node ({100 * (1 - compressed_bpn / plain_bpn):.0f}% smaller)"
        )
    record_metric("chain", "codec_nodes", nodes, "nodes")
    record_metric("chain", "plain_bytes_per_node", round(plain_bpn, 2), "B/node")
    record_metric(
        "chain", "compressed_bytes_per_node", round(compressed_bpn, 2), "B/node"
    )
    record_metric(
        "chain",
        "codec_size_reduction_pct",
        round(100.0 * (1 - compressed_bpn / plain_bpn), 2),
        "%",
    )
    assert compressed_bpn <= 0.75 * _PLAIN_BASELINE_B_PER_NODE
    assert compressed_bpn <= 0.75 * plain_bpn


@pytest.mark.parametrize("backend", ["bbdd", "bdd"])
def test_parity_collapses_on_both_backends(benchmark, backend):
    """The 16-input parity netlist is spans all the way down."""
    network = _ROWS["parity"].build(full=False)

    def builds():
        pm, pf = build(network, backend=backend)
        cm, cf = build(network, backend=backend, chain_reduce=True)
        return (
            pm.node_count(list(pf.values())),
            cm.node_count(list(cf.values())),
        )

    plain, chain = benchmark.pedantic(builds, rounds=1, iterations=1)
    assert chain < plain
    assert chain <= 2
    record_metric("chain", f"parity_{backend}_plain_nodes", plain, "nodes")
    record_metric("chain", f"parity_{backend}_chain_nodes", chain, "nodes")
