"""External-memory backend gates: beyond-budget forests, bounded residency.

Builds a forest of node-rich random DNF functions on the ``xmem``
backend with a deliberately small ``node_budget`` and asserts the
subsystem's contract (the PR acceptance gates):

* the finished forest's live node count exceeds **3x** the budget (the
  workload genuinely does not fit the in-RAM allowance);
* peak resident node records stay within **2x** the budget — completed
  representations spill to disk, level by level, and reload on demand
  (the budget must only cover one operation's working set);
* the per-level request queues of the apply sweeps actually spill
  sorted varint runs;
* results are bit-identical to the in-core BBDD package on >= 64
  random assignments, and node counts match node-for-node (canonical
  levelized representations are the same diagrams).
"""

import random
import time

import repro
from _metrics import record_metric

#: Resident-record allowance; each DNF is ~0.25-0.5x this, so one
#: operation's working set fits while the forest does not.
BUDGET = 2500
NUM_VARS = 16
NUM_FUNCTIONS = 14
TERMS = 25
WIDTH = 8

NAMES = [f"x{i}" for i in range(NUM_VARS)]


def _dnf(manager, seed):
    rng = random.Random(seed)
    f = manager.false()
    for _ in range(TERMS):
        cube = manager.true()
        for var in rng.sample(range(NUM_VARS), WIDTH):
            literal = manager.var(NAMES[var])
            cube &= literal if rng.getrandbits(1) else ~literal
        f |= cube
    return f


def test_xmem_beyond_budget_forest(capsys):
    t0 = time.perf_counter()
    manager = repro.open(
        "xmem", vars=NAMES, node_budget=BUDGET, request_chunk=48
    )
    functions = [_dnf(manager, seed) for seed in range(NUM_FUNCTIONS)]
    build_time = time.perf_counter() - t0

    stats = manager.stats()
    total = stats["live_nodes"]
    peak = stats["peak_resident"]

    oracle = repro.open("bbdd", vars=NAMES)
    oracle_functions = [_dnf(oracle, seed) for seed in range(NUM_FUNCTIONS)]

    rng = random.Random(0xA55)
    t1 = time.perf_counter()
    checked = 0
    for _ in range(64):
        assignment = {name: bool(rng.getrandbits(1)) for name in NAMES}
        for f, g in zip(functions, oracle_functions):
            assert f.evaluate(assignment) == g.evaluate(assignment)
            checked += 1
    eval_time = time.perf_counter() - t1
    for f, g in zip(functions, oracle_functions):
        assert f.node_count() == g.node_count()

    with capsys.disabled():
        print(
            f"\nxmem: forest {total} nodes vs budget {BUDGET} "
            f"({total / BUDGET:.1f}x), peak resident {peak} "
            f"({peak / BUDGET:.2f}x), {stats['spill_writes']} level spills, "
            f"{stats['request_runs_spilled']} request runs, "
            f"build {build_time:.2f}s, {checked} oracle checks in "
            f"{eval_time:.2f}s"
        )

    record_metric("xmem", "forest_nodes", total, "nodes")
    record_metric("xmem", "node_budget", BUDGET, "nodes")
    record_metric("xmem", "peak_resident", peak, "nodes")
    record_metric("xmem", "peak_over_budget", peak / BUDGET, "ratio")
    record_metric("xmem", "forest_over_budget", total / BUDGET, "ratio")
    record_metric("xmem", "level_spill_writes", stats["spill_writes"], "count")
    record_metric(
        "xmem", "request_runs_spilled", stats["request_runs_spilled"], "count"
    )
    record_metric("xmem", "build_time", build_time, "s")
    record_metric(
        "xmem", "build_nodes_per_s", total / max(build_time, 1e-9), "nodes/s"
    )

    # -- the acceptance gates -----------------------------------------
    assert total > 3 * BUDGET, f"forest {total} does not exceed 3x budget"
    assert peak <= 2 * BUDGET, f"peak resident {peak} exceeds 2x budget"
    assert stats["spill_writes"] > 0, "no level block ever spilled"
    assert stats["request_runs_spilled"] > 0, "no request run ever spilled"
    assert stats["resident_nodes"] <= BUDGET, "steady-state residency over budget"


def test_xmem_spilled_forest_still_dumps(tmp_path):
    """A mostly-spilled forest streams straight out to a .bbdd container."""
    manager = repro.open("xmem", vars=NAMES, node_budget=500)
    functions = {f"f{seed}": _dnf(manager, seed) for seed in range(3)}
    path = tmp_path / "forest.bbdd"
    manager.dump(functions, str(path))
    from repro import io as rio

    _m2, loaded = rio.load(str(path))
    for name, f in functions.items():
        assert loaded[name].sat_count() == f.sat_count()
