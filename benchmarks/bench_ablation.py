"""Ablation benches for the design choices of Sec. IV-A3.

* computed table on/off — the memoization of Algorithm 1;
* dict vs. Cantor-pairing unique/computed tables — the paper's hashing
  machinery against native hashing;
* sifting on/off — the re-ordering contribution to node counts.

Each ablation runs the same fixed workload (build the `comp`, `my_adder`
and `parity` benchmarks) so runtimes are directly comparable within a
report.
"""

import pytest

from _metrics import record_metric
from repro.circuits import mcnc
from repro.core.reorder import sift
from repro.harness.table1 import run_benchmark
from repro.network.build import build_bbdd

_WORKLOAD = [mcnc.comp(10), mcnc.my_adder(10), mcnc.parity(12)]


def _build_all(computed_backend="dict", unique_backend="dict"):
    total = 0
    for net in _WORKLOAD:
        manager, fns = build_bbdd(
            net,
            unique_backend=unique_backend,
            computed_backend=computed_backend,
        )
        total += manager.node_count(list(fns.values()))
    return total


@pytest.mark.parametrize("computed", ["dict", "disabled"])
def test_ablation_computed_table(benchmark, computed):
    nodes = benchmark.pedantic(
        _build_all, kwargs={"computed_backend": computed}, rounds=1, iterations=1
    )
    benchmark.extra_info["nodes"] = nodes
    benchmark.extra_info["computed_table"] = computed
    record_metric("ablation", f"computed_{computed}_nodes", nodes, "nodes")


@pytest.mark.parametrize("backend", ["dict", "cantor"])
def test_ablation_table_backend(benchmark, backend):
    nodes = benchmark.pedantic(
        _build_all,
        kwargs={"unique_backend": backend, "computed_backend": backend},
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["nodes"] = nodes
    benchmark.extra_info["backend"] = backend
    record_metric("ablation", f"tables_{backend}_nodes", nodes, "nodes")


@pytest.mark.parametrize("use_sift", [False, True])
def test_ablation_sifting(benchmark, use_sift):
    net = mcnc.comp(12)

    def pipeline():
        manager, fns = build_bbdd(net)
        if use_sift:
            sift(manager)
        return manager.node_count(list(fns.values()))

    nodes = benchmark.pedantic(pipeline, rounds=1, iterations=1)
    benchmark.extra_info["nodes"] = nodes
    benchmark.extra_info["sift"] = use_sift
    record_metric("ablation", f"sift_{'on' if use_sift else 'off'}_nodes", nodes, "nodes")


@pytest.mark.parametrize("package", ["bbdd", "bdd"])
def test_ablation_package_on_xor_rich(benchmark, package):
    """The paper's motivating contrast on an XOR-rich circuit."""
    net = mcnc.parity(16)
    result = benchmark.pedantic(
        run_benchmark, args=(net, package), rounds=1, iterations=1
    )
    benchmark.extra_info["nodes"] = result.nodes
    record_metric("ablation", f"parity16_{package}_nodes", result.nodes, "nodes")
