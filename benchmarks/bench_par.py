"""Parallel sweep gates: multi-core batch evaluation over shared memory.

Builds the full-profile C1908 (ISCAS-85), freezes its dominant output
(``err``, ~150k BBDD nodes) into one read-only
:class:`~repro.par.ShmForest` segment, and answers the same ``1 << 17``
random assignments two ways:

* **serial** — one ``f.evaluate_batch`` cohort sweep in this process;
* **parallel** — a 4-worker :class:`~repro.par.ParallelPool`: each
  worker attaches the *same* segment zero-copy and sweeps its query
  shard.

The function is chosen compute-heavy on purpose: the parts of a batch
query that stay serial in the dispatching process (column encoding,
bitset → bool decoding) are O(queries) while the sweep is
O(queries x nodes), so a large forest is what multi-core actually
buys time on.  The acceptance gate (parallel >= 3x serial) only
asserts when the machine has >= 4 cores — on smaller hosts the
numbers are still recorded so the trajectory stays visible, but
process scheduling cannot deliver a speedup there.

A second stage demonstrates the O(1) memory story: a shared-memory
:class:`~repro.serve.pool.ForestPool` freezes the dump exactly once no
matter how many workers attach, so the per-worker cost is an attach
(a page-table mapping), not a private decoded copy — the freeze count
and segment byte size land in ``benchmarks/out/BENCH_par.json``.
"""

import os
import random
import time

from repro.circuits.registry import TABLE1_ROWS
from repro.network.build import build
from repro.par import ParallelPool, ShmForest, shm_available
from repro.serve import ColumnBatch, ForestPool
from _metrics import record_metric

CIRCUIT = "C1908"
QUERIES = 1 << 17
WORKERS = 4
SPEEDUP_GATE = 3.0


def _build_forest(full):
    row = next(r for r in TABLE1_ROWS if r.name == CIRCUIT)
    network = row.build(full=full)
    manager, functions = build(network, backend="bbdd")
    return manager, functions


def _workload(f, rng):
    support = sorted(f.support())
    columns = {name: rng.getrandbits(QUERIES) for name in support}
    return ColumnBatch(columns, QUERIES)


def test_parallel_sweep_speedup(capsys):
    if not shm_available():
        import pytest

        pytest.skip("multiprocessing.shared_memory unavailable")
    manager, functions = _build_forest(full=True)
    name, f = max(functions.items(), key=lambda item: item[1].node_count())
    batch = _workload(f, random.Random(0x9A7))

    t0 = time.perf_counter()
    serial = f.evaluate_batch(batch)
    t_serial = time.perf_counter() - t0

    forest = ShmForest.freeze(manager, {name: f})
    try:
        with ParallelPool(workers=WORKERS, timeout=600) as pool:
            pool.warm(forest)  # pay attach/import cost outside the timing
            t0 = time.perf_counter()
            parallel = pool.evaluate_batch(forest, name, batch)
            t_parallel = time.perf_counter() - t0
    finally:
        forest.unlink()
        forest.close()

    assert parallel == serial
    speedup = t_serial / t_parallel
    cores = os.cpu_count() or 1
    with capsys.disabled():
        print(
            f"\npar: {CIRCUIT} {name}({len(f.support())} vars, "
            f"{f.node_count()} nodes) x {QUERIES} queries: "
            f"serial {t_serial:.3f}s, {WORKERS} workers "
            f"{t_parallel:.3f}s ({speedup:.2f}x on {cores} cores)"
        )

    record_metric("par", "serial_qps", QUERIES / t_serial, "queries/s")
    record_metric("par", f"parallel_qps_{WORKERS}w", QUERIES / t_parallel, "queries/s")
    record_metric("par", f"par_speedup_{WORKERS}w", speedup, "ratio")
    record_metric("par", "cores_available", cores, "count")

    # -- the acceptance gate ------------------------------------------
    # Only meaningful with real parallel hardware: with fewer cores
    # than workers the sweeps time-slice one CPU and the gate would
    # measure the scheduler, not the subsystem.
    if cores >= WORKERS:
        assert speedup >= SPEEDUP_GATE, (
            f"{WORKERS}-worker sweep only {speedup:.2f}x faster than "
            f"serial (gate: {SPEEDUP_GATE}x on {cores} cores)"
        )


def test_shared_pool_memory_is_o1_per_worker(tmp_path, capsys):
    if not shm_available():
        import pytest

        pytest.skip("multiprocessing.shared_memory unavailable")
    manager, functions = _build_forest(full=False)
    path = tmp_path / "circuit.bbdd"
    manager.dump(functions, str(path))

    pool = ForestPool(workers=2, shared_memory=True)
    try:
        pool.warm(str(path))
        stats = pool.stats()
    finally:
        pool.close()

    # One freeze serves every worker; adding a worker adds an attach
    # (a page-table mapping), not a private decoded copy.
    assert stats["forest_loads"] == 0
    assert stats["shm_freezes"] == 1
    assert stats["shm_attaches"] == pool.workers
    segment_bytes = stats["shm_segment_bytes"]
    assert segment_bytes > 0
    with capsys.disabled():
        print(
            f"par: ForestPool({pool.workers} workers) shares one "
            f"{segment_bytes / 1024:.0f} KiB segment "
            f"({stats['shm_freezes']} freeze, {stats['shm_attaches']} attaches)"
        )
    record_metric("par", "shm_segment_bytes", segment_bytes, "bytes")
    record_metric("par", "shm_freezes_for_2_workers", stats["shm_freezes"], "count")
