"""Observability overhead gates: instrumentation must stay near-free.

Two claims guard the :mod:`repro.obs` design (pull-based collection,
one flag check on the hot path):

* **disabled**: with tracing off — the shipped default — the per-apply
  cost added by instrumentation is a counter bump plus a flag read.
  That extra work is micro-benchmarked directly and must stay under 1%
  of the mean apply time of the reference workload.
* **enabled**: with tracing on, the same apply workload (min over
  repeats, computed tables cleared per round so applies do real work)
  must run within 5% of the disabled time.

Both gates record to ``BENCH_obs.json`` so the overhead trajectory is
tracked alongside the other benches.
"""

import time

import pytest

from _metrics import record_metric
from repro.circuits import mcnc
from repro.network.build import build_bbdd
from repro.obs import trace

#: Timed rounds per configuration; the gate uses the minimum.
_ROUNDS = 5


def _workload():
    """A manager plus function pairs whose applies do real node work.

    ``alu4`` outputs XOR at around a millisecond per apply — three
    orders of magnitude above the per-apply span-record cost, so the
    5% gate measures instrumentation, not noise floor.
    """
    manager, fns = build_bbdd(mcnc.alu4())
    edges = [f.edge for f in fns.values()]
    pairs = [(edges[i], edges[(i + 3) % len(edges)]) for i in range(len(edges))]
    return manager, pairs


def _time_applies(manager, pairs) -> float:
    """Seconds for one full pass (cache cleared so applies recompute)."""
    from repro.core.operations import OP_XOR

    manager.clear_cache()
    start = time.perf_counter()
    for f, g in pairs:
        manager.apply_edges(f, g, OP_XOR)
    return time.perf_counter() - start


def _min_time(manager, pairs, rounds: int = _ROUNDS) -> float:
    return min(_time_applies(manager, pairs) for _ in range(rounds))


def _flag_path_cost_ns(samples: int = 200_000) -> float:
    """Nanoseconds per apply of the disabled-path additions.

    Measures exactly the work :meth:`BBDDManager.apply_edges` gained for
    the non-tracing case — an integer counter bump plus a flag read —
    against an empty loop baseline.
    """

    class _Host:
        __slots__ = ("apply_calls", "_trace_state")

        def __init__(self):
            self.apply_calls = 0
            self._trace_state = trace.STATE

    host = _Host()
    indices = range(samples)
    start = time.perf_counter()
    for _ in indices:
        pass
    baseline = time.perf_counter() - start
    start = time.perf_counter()
    for _ in indices:
        host.apply_calls += 1
        if host._trace_state.enabled:
            pass
    loaded = time.perf_counter() - start
    return max(0.0, loaded - baseline) / samples * 1e9


def test_obs_overhead_gates(benchmark):
    """Disabled-path cost < 1% of an apply; tracing-on slowdown <= 5%."""
    manager, pairs = _workload()
    trace.disable()
    # Warm-up pass: populate unique tables and fault in code paths.
    _time_applies(manager, pairs)

    disabled = benchmark.pedantic(
        lambda: _min_time(manager, pairs), rounds=1, iterations=1
    )
    with trace.tracing():
        enabled = _min_time(manager, pairs)

    mean_apply_s = disabled / len(pairs)
    flag_ns = min(_flag_path_cost_ns() for _ in range(3))
    flag_fraction = (flag_ns * 1e-9) / mean_apply_s

    record_metric("obs", "apply_pass_disabled_s", disabled, "s")
    record_metric("obs", "apply_pass_traced_s", enabled, "s")
    record_metric(
        "obs", "traced_overhead_pct", 100.0 * (enabled / disabled - 1.0), "%"
    )
    record_metric("obs", "disabled_path_cost_ns", flag_ns, "ns/apply")
    record_metric(
        "obs", "disabled_path_cost_pct", 100.0 * flag_fraction, "%"
    )
    benchmark.extra_info["traced_over_disabled"] = enabled / disabled
    benchmark.extra_info["disabled_path_ns"] = flag_ns

    assert flag_fraction < 0.01, (
        f"disabled-path instrumentation costs {flag_ns:.1f} ns/apply — "
        f"{100 * flag_fraction:.2f}% of a {mean_apply_s * 1e6:.1f} µs apply"
    )
    assert enabled <= disabled * 1.05, (
        f"tracing-enabled pass {enabled:.4f}s vs disabled {disabled:.4f}s "
        f"({100 * (enabled / disabled - 1):.1f}% > 5%)"
    )


def test_obs_collection_is_pure():
    """Snapshotting twice must not inflate sampled counters."""
    from repro import obs

    manager, pairs = _workload()
    first = obs.snapshot()
    second = obs.snapshot()
    for name in ("repro_manager_apply_total", "repro_manager_nodes"):
        ours_first = [
            s["value"]
            for s in first[name]["samples"]
            if s["labels"].get("backend") == "bbdd"
        ]
        ours_second = [
            s["value"]
            for s in second[name]["samples"]
            if s["labels"].get("backend") == "bbdd"
        ]
        assert ours_first == ours_second
    assert manager is not None  # keep the tracked manager alive


if __name__ == "__main__":  # pragma: no cover
    pytest.main([__file__, "-q"])
