"""Table I reproduction bench: BBDD package vs. baseline BDD package.

One benchmark per MCNC row and package (build + sift pipeline), plus a
summary benchmark that prints the full Table I layout with the paper
reference averages.  Default profile scales the heaviest generators down
for pure-Python tractability; ``REPRO_FULL=1`` selects paper-scale
circuits (see DESIGN.md §3.5).
"""

import pytest

from _metrics import record_metric
from repro.circuits.registry import TABLE1_ROWS
from repro.harness.table1 import render_table1, run_benchmark, run_table1

_ROWS = {row.name: row for row in TABLE1_ROWS}

# Rows light enough to run per-row benches on every invocation.
_PER_ROW = [
    "C1355", "C1908", "C499", "my_adder", "comp", "count", "cordic",
    "alu4", "C17", "9symml", "z4ml", "decod", "parity", "misex1",
]


@pytest.mark.parametrize("name", _PER_ROW)
@pytest.mark.parametrize("package", ["bbdd", "bdd"])
def test_build_and_sift(benchmark, name, package):
    row = _ROWS[name]
    network = row.build(full=False)

    def pipeline():
        return run_benchmark(network, package)

    result = benchmark.pedantic(pipeline, rounds=1, iterations=1)
    benchmark.extra_info["nodes"] = result.nodes
    benchmark.extra_info["paper_nodes"] = (
        row.paper_bbdd_nodes if package == "bbdd" else row.paper_bdd_nodes
    )
    record_metric("table1", f"{package}_{name}_nodes", result.nodes, "nodes")


# Gate constants: the paper's Table I average for the default profile and
# the flat-store performance target (BBDD pipeline within 2x of the BDD
# baseline pipeline on the same circuits).
_PAPER_AVG_BBDD_NODES = 575.65
_NODE_TOLERANCE = 0.10
_MAX_TIME_RATIO = 2.0


def test_table1_summary(benchmark, capsys):
    """Full Table I pipeline; prints the paper-style table and gates.

    The time-ratio gate compares per-row *minima* over two harness runs:
    a single run's wall-clock ratio swings with machine load, while the
    min-of-N estimate converges on the actual cost of each pipeline.
    """
    first = run_table1()
    summary = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(render_table1(summary))
    for backend in summary["backends"]:
        record_metric(
            "table1", f"avg_{backend}_nodes", summary[f"avg_{backend}_nodes"], "nodes"
        )
        record_metric(
            "table1", f"total_{backend}_time", summary[f"total_{backend}_time"], "s"
        )
    bbdd_time = bdd_time = 0.0
    for row_a, row_b in zip(first["rows"], summary["rows"]):
        assert row_a["name"] == row_b["name"]
        bbdd_time += min(
            row_a["bbdd_build"] + row_a["bbdd_sift"],
            row_b["bbdd_build"] + row_b["bbdd_sift"],
        )
        bdd_time += min(
            row_a["bdd_build"] + row_a["bdd_sift"],
            row_b["bdd_build"] + row_b["bdd_sift"],
        )
    ratio = bbdd_time / bdd_time
    record_metric("table1", "bbdd_bdd_time_ratio", ratio, "x")
    assert summary["rows"]
    # Structural gate: sifted BBDD sizes must track the paper's average.
    avg_nodes = summary["avg_bbdd_nodes"]
    assert (
        abs(avg_nodes - _PAPER_AVG_BBDD_NODES)
        <= _NODE_TOLERANCE * _PAPER_AVG_BBDD_NODES
    ), f"avg_bbdd_nodes {avg_nodes} strayed from {_PAPER_AVG_BBDD_NODES}"
    # Performance gate: the flat-store BBDD pipeline stays within 2x of
    # the baseline BDD package end to end.
    assert ratio <= _MAX_TIME_RATIO, (
        f"BBDD/BDD harness time ratio {ratio:.2f} exceeds {_MAX_TIME_RATIO}"
    )
