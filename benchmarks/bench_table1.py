"""Table I reproduction bench: BBDD package vs. baseline BDD package.

One benchmark per MCNC row and package (build + sift pipeline), plus a
summary benchmark that prints the full Table I layout with the paper
reference averages.  Default profile scales the heaviest generators down
for pure-Python tractability; ``REPRO_FULL=1`` selects paper-scale
circuits (see DESIGN.md §3.5).
"""

import pytest

from _metrics import record_metric
from repro.circuits.registry import TABLE1_ROWS
from repro.harness.table1 import render_table1, run_benchmark, run_table1

_ROWS = {row.name: row for row in TABLE1_ROWS}

# Rows light enough to run per-row benches on every invocation.
_PER_ROW = [
    "C1355", "C1908", "C499", "my_adder", "comp", "count", "cordic",
    "alu4", "C17", "9symml", "z4ml", "decod", "parity", "misex1",
]


@pytest.mark.parametrize("name", _PER_ROW)
@pytest.mark.parametrize("package", ["bbdd", "bdd"])
def test_build_and_sift(benchmark, name, package):
    row = _ROWS[name]
    network = row.build(full=False)

    def pipeline():
        return run_benchmark(network, package)

    result = benchmark.pedantic(pipeline, rounds=1, iterations=1)
    benchmark.extra_info["nodes"] = result.nodes
    benchmark.extra_info["paper_nodes"] = (
        row.paper_bbdd_nodes if package == "bbdd" else row.paper_bdd_nodes
    )
    record_metric("table1", f"{package}_{name}_nodes", result.nodes, "nodes")


def test_table1_summary(benchmark, capsys):
    """Full Table I pipeline; prints the paper-style table."""
    summary = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(render_table1(summary))
    for backend in summary["backends"]:
        record_metric(
            "table1", f"avg_{backend}_nodes", summary[f"avg_{backend}_nodes"], "nodes"
        )
        record_metric(
            "table1", f"total_{backend}_time", summary[f"total_{backend}_time"], "s"
        )
    assert summary["rows"]
