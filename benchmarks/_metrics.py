"""Machine-readable benchmark metrics (``BENCH_<name>.json``).

Every ``bench_*.py`` records its headline numbers through
:func:`record_metric`; the files land in ``benchmarks/out/`` (override
with ``BENCH_OUT_DIR``) as::

    {
      "bench": "io",
      "commit": "<git sha or 'unknown'>",
      "metrics": [
        {"name": "roundtrip_nodes_per_s", "value": 140000, "unit": "nodes/s"},
        ...
      ],
      "obs": {"repro_manager_apply_total": [...], ...}
    }

CI uploads the directory as an artifact per run, so the performance
trajectory is tracked from the commit that introduced this module on.
Re-recording a metric name within one run overwrites the previous
value (benches parameterize names instead).

The ``obs`` section is a compact :func:`repro.obs.snapshot` of the
benchmarking process at recording time — non-zero samples only — so
every ``BENCH_*.json`` doubles as a workload profile (cache hit rates,
GC volume, spill traffic) next to its headline numbers.
"""

from __future__ import annotations

import json
import os
import subprocess
from typing import Union

_COMMIT: Union[str, None] = None


def _commit() -> str:
    global _COMMIT
    if _COMMIT is None:
        try:
            result = subprocess.run(
                ["git", "rev-parse", "HEAD"],
                capture_output=True,
                text=True,
                cwd=os.path.dirname(os.path.abspath(__file__)),
                timeout=10,
            )
            _COMMIT = result.stdout.strip() or "unknown"
        except Exception:
            _COMMIT = "unknown"
    return _COMMIT


def _out_dir() -> str:
    directory = os.environ.get("BENCH_OUT_DIR") or os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "out"
    )
    os.makedirs(directory, exist_ok=True)
    return directory


def _obs_section() -> dict:
    """A compact metrics snapshot: non-zero samples per family name.

    Best-effort — an environment without the package importable (or a
    snapshot failure) produces an empty section rather than breaking
    the benchmark run.
    """
    try:
        from repro import obs

        snapshot = obs.snapshot()
    except Exception:
        return {}
    section: dict = {}
    for name in sorted(snapshot):
        entry = snapshot[name]
        samples = []
        for sample in entry.get("samples", ()):
            if entry.get("type") == "histogram":
                if not sample["count"]:
                    continue
                samples.append(
                    {
                        "labels": sample["labels"],
                        "count": sample["count"],
                        "sum": round(float(sample["sum"]), 6),
                    }
                )
            elif sample["value"]:
                samples.append(
                    {"labels": sample["labels"], "value": sample["value"]}
                )
        if samples:
            section[name] = samples
    return section


def record_metric(bench: str, name: str, value, unit: str) -> str:
    """Record one metric of benchmark ``bench``; returns the json path."""
    path = os.path.join(_out_dir(), f"BENCH_{bench}.json")
    doc = {"bench": bench, "metrics": []}
    if os.path.exists(path):
        try:
            with open(path, "r", encoding="utf-8") as fileobj:
                doc = json.load(fileobj)
        except (OSError, ValueError):
            pass
    doc["bench"] = bench
    doc["commit"] = _commit()
    metrics = [m for m in doc.get("metrics", []) if m.get("name") != name]
    if isinstance(value, float):
        value = round(value, 6)
    metrics.append({"name": name, "value": value, "unit": unit})
    doc["metrics"] = sorted(metrics, key=lambda m: m["name"])
    doc["obs"] = _obs_section()
    with open(path, "w", encoding="utf-8") as fileobj:
        json.dump(doc, fileobj, indent=2)
        fileobj.write("\n")
    return path
