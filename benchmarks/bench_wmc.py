"""Weighted-counting gates: exact ``p_one`` versus the truth-table oracle.

For every Table I circuit whose fast profile has at most 20 inputs, the
exhaustive bit-parallel simulator (:func:`repro.network.simulate.
output_truth_masks`) computes the representative output's full truth
table, and a memoized Shannon fold over that word with pseudo-random
``k/16`` weights gives the ground-truth ``P[f = 1]`` as an exact
Fraction.  The acceptance gate: ``f.p_one(weights)`` must equal that
oracle **bit for bit** on every circuit across all three backends
(bbdd/bdd/xmem) — the levelized sweep is an optimization of the
semantics, never an approximation.

The sweep-vs-enumeration timing of the largest circuit lands in
``benchmarks/out/BENCH_wmc.json`` so the asymptotic win (O(nodes) per
query versus O(2^n) enumeration) stays visible run over run.
"""

import random
import time
from fractions import Fraction

import repro
from repro.circuits.registry import TABLE1_ROWS
from repro.network.build import build
from repro.network.simulate import output_truth_masks
from _metrics import record_metric

INPUT_LIMIT = 20
BACKENDS = ("bbdd", "bdd", "xmem")
WEIGHT_SEED = 0x20140807


def _oracle_fold(word, names, probs):
    """Exact ``P[f = 1]`` by memoized Shannon folding of a truth word.

    ``word`` is the exhaustive truth table over ``names`` (input ``j``
    is bit ``j`` of the pattern index).  The fold splits on the highest
    variable; full and empty subwords terminate immediately because
    probability mass over a subcube always sums to one.
    """
    memo = {}

    def fold(w, k):
        if w == 0:
            return Fraction(0)
        full = (1 << (1 << k)) - 1
        if w == full:
            return Fraction(1)
        key = (k, w)
        hit = memo.get(key)
        if hit is not None:
            return hit
        half = 1 << (k - 1)
        p = probs[names[k - 1]]
        value = (1 - p) * fold(w & ((1 << half) - 1), k - 1) + p * fold(
            w >> half, k - 1
        )
        memo[key] = value
        return value

    return fold(word, len(names))


def _eligible_circuits():
    """Fast-profile Table I circuits with at most ``INPUT_LIMIT`` inputs."""
    for row in TABLE1_ROWS:
        network = row.build(full=False)
        if network.num_inputs <= INPUT_LIMIT:
            yield row.name, network


def test_p_one_bit_exact_on_table1_circuits(capsys):
    """Gate: exact-Fraction ``p_one`` == truth-table oracle, everywhere."""
    checked = 0
    slowest = (0.0, None)
    enumeration_s = {}
    sweep_s = {}
    for name, network in _eligible_circuits():
        rng = random.Random(WEIGHT_SEED ^ hash(name))
        weights = {
            signal: Fraction(rng.randint(0, 16), 16)
            for signal in network.inputs
        }
        t0 = time.perf_counter()
        truth = output_truth_masks(network)
        # The representative output: the one touching the most of the
        # circuit (densest truth word ties break deterministically).
        output = max(
            truth, key=lambda out: (bin(truth[out]).count("1"), out)
        )
        oracle = _oracle_fold(truth[output], network.inputs, weights)
        t_oracle = time.perf_counter() - t0
        enumeration_s[name] = t_oracle

        for backend in BACKENDS:
            manager, functions = build(network, backend=backend)
            f = functions[output]
            t0 = time.perf_counter()
            got = f.p_one(weights)
            t_sweep = time.perf_counter() - t0
            sweep_s.setdefault(name, {})[backend] = t_sweep
            # -- the acceptance gate ----------------------------------
            assert got == oracle, (
                f"{name}/{output} on {backend}: p_one {got} != oracle "
                f"{oracle} ({network.num_inputs} inputs)"
            )
        checked += 1
        if t_oracle > slowest[0]:
            slowest = (t_oracle, name)

    assert checked >= 8, f"only {checked} circuits under {INPUT_LIMIT} inputs"
    big = slowest[1]
    with capsys.disabled():
        print(
            f"\nwmc: {checked} circuits bit-exact across {len(BACKENDS)} "
            f"backends; largest ({big}) oracle {enumeration_s[big]:.3f}s vs "
            f"sweep {max(sweep_s[big].values()):.4f}s"
        )
    record_metric("wmc", "circuits_bit_exact", checked, "count")
    record_metric("wmc", "oracle_enumeration_s", enumeration_s[big], "s")
    for backend, t_sweep in sweep_s[big].items():
        record_metric("wmc", f"p_one_sweep_{backend}_s", t_sweep, "s")


def test_marginals_throughput_on_largest_circuit(capsys, once):
    """All posterior marginals of the densest eligible circuit, timed."""
    name, network = max(
        _eligible_circuits(), key=lambda item: item[1].num_inputs
    )
    manager, functions = build(network, backend="bbdd")
    f = max(functions.values(), key=lambda g: g.node_count())
    rng = random.Random(WEIGHT_SEED)
    weights = {
        signal: Fraction(rng.randint(1, 15), 16) for signal in network.inputs
    }

    t0 = time.perf_counter()
    posterior = once(f.marginals, weights)
    elapsed = time.perf_counter() - t0
    support = sorted(f.support())
    assert sorted(posterior) == support
    assert all(0 <= p <= 1 for p in posterior.values())
    with capsys.disabled():
        print(
            f"wmc: {name} marginals over {len(support)} vars "
            f"({f.node_count()} nodes) in {elapsed:.3f}s"
        )
    record_metric("wmc", "marginals_vars", len(support), "count")
    record_metric("wmc", "marginals_s", elapsed, "s")
