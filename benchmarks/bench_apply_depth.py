"""Deep-chain apply benchmarks: iterative engine + automatic GC gates.

Builds parity functions as sequential XOR chains (``f = f ^ x_i``) —
the workload that used to exhaust both the Python stack (recursive
apply) and memory (no reclamation of dead intermediates: parity-1600
left ~n^2/4 = 641,600 stored nodes for an 800-node result, and
parity-4000 did not finish in 100 s).  The iterative engine with
automatic garbage collection must complete parity-4000 in seconds with
bounded peak memory.

Gates asserted here (the PR-2 acceptance contract):

* parity-4000 builds in < 10 s;
* peak stored manager nodes stay < 5x the final BBDD size;
* the chain builds correctly under a recursion limit of 5,000 (the
  engine never recurses on operand depth).
"""

import sys
import time

import pytest

from _metrics import record_metric
from repro.core import BBDDManager

#: (variables, build-time gate in seconds).  The 4000-variable chain is
#: the acceptance gate; the smaller sizes chart the scaling curve.
_SIZES = [(500, 2.0), (1000, 3.0), (2000, 5.0), (4000, 10.0)]

PEAK_FACTOR = 5.0


def _build_chain(n):
    manager = BBDDManager(n)
    f = manager.var(0)
    for i in range(1, n):
        f = f ^ manager.var(i)
    return manager, f


@pytest.mark.parametrize("n,limit", _SIZES, ids=[f"parity-{n}" for n, _ in _SIZES])
def test_chain_build_depth(benchmark, n, limit):
    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(5_000)  # prove the engine is iterative
    try:
        t0 = time.perf_counter()
        manager, f = benchmark.pedantic(
            _build_chain, args=(n,), rounds=1, iterations=1
        )
        elapsed = time.perf_counter() - t0
    finally:
        sys.setrecursionlimit(old_limit)

    final = f.node_count()
    assert final == n // 2
    assert f.sat_count() == 1 << (n - 1)

    stats = manager.table_stats()
    benchmark.extra_info.update(
        {
            "final_nodes": final,
            "peak_nodes": manager.peak_nodes,
            "stored_nodes": manager.size(),
            "auto_gc_runs": stats["auto_gc_runs"],
            "build_seconds": round(elapsed, 3),
        }
    )

    record_metric("apply_depth", f"parity_{n}_build_time", round(elapsed, 3), "s")
    record_metric("apply_depth", f"parity_{n}_peak_nodes", manager.peak_nodes, "nodes")

    # Memory gate: automatic GC keeps the build bounded.
    assert manager.peak_nodes < PEAK_FACTOR * final, (
        f"peak {manager.peak_nodes} nodes exceeds {PEAK_FACTOR}x the "
        f"{final}-node result: auto-GC is not keeping up"
    )
    # Time gate.
    assert elapsed < limit, f"parity-{n} build took {elapsed:.2f}s (gate {limit}s)"


def test_chain_summary(capsys):
    """Print the scaling table (shown with ``pytest -s``)."""
    rows = []
    for n, _limit in _SIZES[:-1]:  # summary profile skips the largest
        t0 = time.perf_counter()
        manager, f = _build_chain(n)
        dt = time.perf_counter() - t0
        rows.append(
            (n, round(dt, 3), f.node_count(), manager.peak_nodes, manager.auto_gc_runs)
        )
    with capsys.disabled():
        print()
        print("parity chain scaling (iterative engine + auto-GC)")
        print(f"{'n':>6} {'seconds':>8} {'final':>7} {'peak':>7} {'gc runs':>8}")
        for n, dt, final, peak, runs in rows:
            print(f"{n:>6} {dt:>8} {final:>7} {peak:>7} {runs:>8}")
