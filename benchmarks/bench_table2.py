"""Table II reproduction bench: the datapath synthesis case study.

One benchmark per datapath row and flow, plus the full-table summary with
the paper's Average-row deltas (-11.02% area / -32.29% delay reference).
"""

import pytest

from _metrics import record_metric
from repro.circuits.registry import TABLE2_ROWS
from repro.harness.table2 import render_table2, run_table2
from repro.synth.flow import baseline_flow, bbdd_flow
from repro.synth.library import default_library

_ROWS = {row.name: row for row in TABLE2_ROWS}
_LIBRARY = default_library()


@pytest.mark.parametrize("name", sorted(_ROWS))
@pytest.mark.parametrize("flow", ["bbdd", "commercial"])
def test_flow(benchmark, name, flow):
    row = _ROWS[name]
    rtl = row.build(full=False)
    runner = bbdd_flow if flow == "bbdd" else baseline_flow

    def pipeline():
        return runner(rtl, _LIBRARY, check_equivalence=False)

    result = benchmark.pedantic(pipeline, rounds=1, iterations=1)
    benchmark.extra_info["area_um2"] = round(result.area, 2)
    benchmark.extra_info["delay_ns"] = round(result.delay_ns, 3)
    benchmark.extra_info["gates"] = result.gate_count
    paper = row.paper_bbdd if flow == "bbdd" else row.paper_commercial
    benchmark.extra_info["paper_area_delay_gates"] = paper
    record_metric("table2", f"{flow}_{name}_area", round(result.area, 2), "um2")
    record_metric("table2", f"{flow}_{name}_delay", round(result.delay_ns, 3), "ns")


def test_table2_summary(benchmark, capsys):
    summary = benchmark.pedantic(run_table2, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(render_table2(summary))
    assert summary["all_equivalent"]
