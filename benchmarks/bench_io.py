"""Persistence benchmarks: dump/load throughput and file size vs. nodes.

Round-trips registry forests through the levelized binary format
(:mod:`repro.io`): per-circuit round-trip benches, plus a throughput
gate on the largest registry circuit asserting the subsystem's
performance contract — combined dump+load at >= 50k nodes/s and a file
footprint of <= 16 bytes per node.
"""

import time

import pytest

from _metrics import record_metric
from repro import io as rio
from repro.circuits.registry import TABLE1_ROWS
from repro.network.build import build_bbdd

_ROWS = {row.name: row for row in TABLE1_ROWS}

# Node-heavy fast-profile circuits (misex3 is the largest registry forest).
_PER_ROW = ["misex3", "C1355", "frg1", "seq", "my_adder", "comp"]


def _forest(name):
    network = _ROWS[name].build(full=False)
    manager, functions = build_bbdd(network)
    nodes = manager.node_count(list(functions.values()))
    return manager, functions, nodes


@pytest.mark.parametrize("name", _PER_ROW)
def test_roundtrip(benchmark, name):
    manager, functions, nodes = _forest(name)

    def roundtrip():
        data = rio.dumps(manager, functions)
        rio.loads(data)
        return data

    data = benchmark.pedantic(roundtrip, rounds=1, iterations=1)
    benchmark.extra_info["nodes"] = nodes
    benchmark.extra_info["file_bytes"] = len(data)
    benchmark.extra_info["bytes_per_node"] = round(len(data) / max(nodes, 1), 2)
    record_metric(
        "io", f"{name}_bytes_per_node", round(len(data) / max(nodes, 1), 2), "B/node"
    )


def test_io_throughput_largest_circuit(benchmark, capsys):
    """The subsystem's performance contract, on the largest registry forest."""
    manager, functions, nodes = max(
        (_forest(name) for name in _PER_ROW), key=lambda c: c[2]
    )

    def measured():
        t0 = time.perf_counter()
        data = rio.dumps(manager, functions)
        t_dump = time.perf_counter() - t0
        t0 = time.perf_counter()
        reloaded_manager, reloaded = rio.loads(data)
        t_load = time.perf_counter() - t0
        count = reloaded_manager.node_count(list(reloaded.values()))
        return data, t_dump, t_load, count

    data, t_dump, t_load, reloaded_nodes = benchmark.pedantic(
        measured, rounds=1, iterations=1
    )
    assert reloaded_nodes == nodes  # same order => node-for-node round trip

    # The v2 compressed container, for the size trajectory next to the
    # plain footprint (bench_chain gates the ratio; here it is recorded).
    compressed = rio.dumps(manager, functions, compress=True)
    compressed_manager, compressed_fns = rio.loads(compressed)
    assert compressed_manager.node_count(list(compressed_fns.values())) == nodes

    bytes_per_node = len(data) / nodes
    throughput = nodes / (t_dump + t_load)
    benchmark.extra_info["nodes"] = nodes
    benchmark.extra_info["bytes_per_node"] = round(bytes_per_node, 2)
    benchmark.extra_info["dump_nodes_per_s"] = round(nodes / t_dump)
    benchmark.extra_info["load_nodes_per_s"] = round(nodes / t_load)
    benchmark.extra_info["roundtrip_nodes_per_s"] = round(throughput)
    with capsys.disabled():
        print(
            f"\nio throughput: {nodes} nodes, {len(data)} bytes "
            f"({bytes_per_node:.2f} B/node), dump {nodes / t_dump:,.0f} n/s, "
            f"load {nodes / t_load:,.0f} n/s, round trip {throughput:,.0f} n/s"
        )
    record_metric("io", "largest_nodes", nodes, "nodes")
    record_metric("io", "bytes_per_node", round(bytes_per_node, 2), "B/node")
    record_metric(
        "io",
        "compressed_bytes_per_node",
        round(len(compressed) / nodes, 2),
        "B/node",
    )
    record_metric("io", "dump_nodes_per_s", round(nodes / t_dump), "nodes/s")
    record_metric("io", "load_nodes_per_s", round(nodes / t_load), "nodes/s")
    record_metric("io", "roundtrip_nodes_per_s", round(throughput), "nodes/s")
    assert bytes_per_node <= 16.0
    assert throughput >= 50_000
