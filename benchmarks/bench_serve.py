"""Serving gates: levelized batch evaluation vs looped walks, p50 latency.

Builds a Table I circuit, takes its largest output function, and
answers the same 10,000 random assignments two ways:

* **looped** — the public ``f.evaluate(assignment)`` per query, one
  root-to-sink walk each (the only option before ``repro.serve``);
* **batched** — one ``f.evaluate_batch`` cohort sweep.  The batch side
  is measured on both input forms: a pre-packed
  :class:`~repro.serve.bulk.ColumnBatch` (the columnar wire format a
  vectorized service keeps end-to-end; the acceptance gate, >= 20x) and
  plain per-query mapping input (transpose included, reported as its
  own metric).

Each side receives the identical assignments in its natural format;
constructing those inputs is excluded from both timings.  A second
stage drives the full asyncio service (coalescing
:class:`~repro.serve.server.BatchingServer` over an inline
:class:`~repro.serve.pool.ForestPool`) with bursts of single queries
and records the p50/p99 service latency.  Headline numbers land in
``benchmarks/out/BENCH_serve.json``.
"""

import asyncio
import random
import time

from repro.circuits.registry import TABLE1_ROWS
from repro.network.build import build
from repro.serve import BatchingServer, ColumnBatch, ForestPool
from _metrics import record_metric

CIRCUIT = "C1908"
QUERIES = 10_000
SPEEDUP_GATE = 20.0
SERVICE_QUERIES = 600


def _build_function():
    row = next(r for r in TABLE1_ROWS if r.name == CIRCUIT)
    network = row.build(full=False)
    manager, functions = build(network, backend="bbdd")
    # The largest output whose support is a strict subset of the
    # inputs — the normal serving shape (clients send the variables
    # the function reads, not the whole circuit interface).
    candidates = sorted(
        functions.items(), key=lambda item: item[1].node_count(), reverse=True
    )
    for _name, f in candidates:
        if len(f.support()) < manager.num_vars:
            return manager, functions, f
    return manager, functions, candidates[0][1]


def _workload(manager, f, rng):
    support = sorted(f.support())
    columns = {name: rng.getrandbits(QUERIES) for name in support}
    batch = ColumnBatch(columns, QUERIES)
    assignments = [
        {name: bool((columns[name] >> i) & 1) for name in support}
        for i in range(QUERIES)
    ]
    return batch, assignments


def test_batched_evaluation_speedup(capsys):
    manager, _functions, f = _build_function()
    rng = random.Random(0xC0FFEE)
    batch, assignments = _workload(manager, f, rng)

    t0 = time.perf_counter()
    looped = [f.evaluate(assignment) for assignment in assignments]
    t_loop = time.perf_counter() - t0

    t0 = time.perf_counter()
    batched = f.evaluate_batch(batch)
    t_batch = time.perf_counter() - t0

    t0 = time.perf_counter()
    batched_dicts = f.evaluate_batch(assignments)
    t_batch_dicts = time.perf_counter() - t0

    assert batched == looped
    assert batched_dicts == looped

    speedup = t_loop / t_batch
    speedup_dicts = t_loop / t_batch_dicts
    with capsys.disabled():
        print(
            f"\nserve: {CIRCUIT} f({len(f.support())} vars, "
            f"{f.node_count()} nodes) x {QUERIES} queries: "
            f"loop {t_loop:.3f}s, batched {t_batch * 1000:.2f}ms "
            f"({speedup:.0f}x; mapping input {speedup_dicts:.1f}x)"
        )

    record_metric("serve", "loop_qps", QUERIES / t_loop, "queries/s")
    record_metric("serve", "batched_qps", QUERIES / t_batch, "queries/s")
    record_metric("serve", "batch_speedup", speedup, "ratio")
    record_metric("serve", "batch_speedup_mapping_input", speedup_dicts, "ratio")

    # -- the acceptance gate ------------------------------------------
    assert speedup >= SPEEDUP_GATE, (
        f"batched evaluation only {speedup:.1f}x faster than looped "
        f"evaluate (gate: {SPEEDUP_GATE}x)"
    )


def test_service_p50_latency(tmp_path, capsys):
    manager, functions, f = _build_function()
    name = next(n for n, g in functions.items() if g is f)
    path = tmp_path / "circuit.bbdd"
    manager.dump({name: f}, str(path))
    rng = random.Random(0xFEED)
    support = sorted(f.support())
    queries = [
        {var: bool(rng.getrandbits(1)) for var in support}
        for _ in range(SERVICE_QUERIES)
    ]

    async def drive():
        pool = ForestPool(workers=0, cache_size=0)
        server = BatchingServer(pool, str(path), batch_window=0.002, max_batch=256)
        server.warm()
        # Bursts of concurrent single queries, like coalesced traffic.
        burst = 100
        for start in range(0, len(queries), burst):
            await asyncio.gather(
                *(
                    server.query(name, assignment)
                    for assignment in queries[start : start + burst]
                )
            )
        stats = server.stats()
        pool.close()
        return stats

    stats = asyncio.run(drive())
    p50_ms = stats["p50_latency_s"] * 1000
    p99_ms = stats["p99_latency_s"] * 1000
    with capsys.disabled():
        print(
            f"serve: {stats['queries']} service queries in "
            f"{stats['batches_flushed']} flushes (mean batch "
            f"{stats['mean_batch']:.0f}): p50 {p50_ms:.2f}ms, p99 {p99_ms:.2f}ms"
        )
    record_metric("serve", "service_p50_ms", p50_ms, "ms")
    record_metric("serve", "service_p99_ms", p99_ms, "ms")
    record_metric("serve", "service_mean_batch", stats["mean_batch"], "queries")
    assert stats["queries"] == SERVICE_QUERIES
    assert stats["batches_flushed"] <= SERVICE_QUERIES / 10
