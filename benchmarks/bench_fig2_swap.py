"""Fig. 2 bench: CVO swap validation and throughput.

Checks the three properties the paper's swap theory promises — function
preservation, canonicity (bit-exact match with a from-scratch rebuild
under the new order), and locality (functions not involving both swapped
variables keep their nodes untouched) — then micro-benchmarks swap
throughput against the rebuild-based reorderer.
"""

import random

from _metrics import record_metric
from repro.core import BBDDManager
from repro.core.reorder import from_truth_table, swap_adjacent, SwapStats
from repro.core.traversal import count_nodes


def test_fig2_swap_validation(benchmark):
    rng = random.Random(22)
    cases = []
    for _ in range(10):
        n = rng.randint(3, 7)
        masks = [rng.getrandbits(1 << n) for _ in range(3)]
        cases.append((n, masks))

    def validate():
        total_swaps = 0
        for n, masks in cases:
            m = BBDDManager(n)
            funcs = [m.function(from_truth_table(m, mask)) for mask in masks]
            for k in list(range(n - 1)) + list(range(n - 2, -1, -1)):
                swap_adjacent(m, k)
                total_swaps += 1
                for f, mask in zip(funcs, masks):
                    assert f.truth_mask(range(n)) == mask
            m.check_invariants()
            # Canonicity oracle: rebuild from scratch under final order.
            m2 = BBDDManager(n)
            m2.order.set_order(m.order.order)
            edges2 = [from_truth_table(m2, mask) for mask in masks]
            m.gc()
            assert count_nodes(m, [f.edge for f in funcs]) == count_nodes(
                m2, edges2
            )
        return total_swaps

    swaps = benchmark.pedantic(validate, rounds=1, iterations=1)
    benchmark.extra_info["swaps_validated"] = swaps
    record_metric("fig2_swap", "swaps_validated", swaps, "swaps")


def test_fig2_swap_throughput(benchmark):
    """Swaps per second on a mid-size forest (the sifting inner loop)."""
    n = 14
    rng = random.Random(23)
    m = BBDDManager(n)
    funcs = [
        m.function(from_truth_table(m, rng.getrandbits(1 << n)))
        for _ in range(2)
    ]
    stats = SwapStats()
    schedule = [rng.randrange(n - 1) for _ in range(60)]

    def run():
        for k in schedule:
            swap_adjacent(m, k, stats)
        return stats.swaps

    benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(stats.as_dict())
    record_metric(
        "fig2_swap",
        "swaps_per_s",
        round(stats.swaps / max(benchmark.stats.stats.mean, 1e-9)),
        "swaps/s",
    )
    assert funcs[0].node_count() > 0
