"""Shared pytest-benchmark configuration.

Every benchmark runs its workload once per measurement (``pedantic`` with
one round) — the workloads are full experiment pipelines, not
micro-kernels, and the paper's Table I/II numbers are single-run
measurements as well.
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark ``fn`` with a single round/iteration and return its value."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once(benchmark):
    def runner(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return runner
