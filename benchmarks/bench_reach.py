"""Reachability gates: oracle-verified fixpoints and the fused product.

Two claims are gated here:

* **correctness at scale** — the symbolic BFS fixpoint of every shipped
  FSM family (counter / LFSR / rule-110 cellular automaton) at 10-12
  state bits enumerates to exactly the state codes the explicit
  bit-parallel oracle finds;
* **the fused relational product pays** — on the largest frontend FSM
  (an 18-cell cellular automaton) quantifying against an
  *incompressible* state set (a uniformly random function over 12 state
  variables, the worst case for conjunction size), fused
  ``relation.and_exists(S, V)`` must beat the unfused
  ``(relation & S).exists(V)`` by at least 1.5x.  The two variants run
  on **separate managers**: sharing one would let the first-run's node
  table and memo growth poison the second measurement.

Numbers land in ``benchmarks/out/BENCH_reach.json``.
"""

import random
import time

from repro.reach import explicit_reachable, from_network, models, reachable
from _metrics import record_metric

SPEEDUP_GATE = 1.5
GATE_CELLS = 18
GATE_SET_VARS = 12
GATE_SEED = 0x2014


def _random_function(manager, names, rng):
    """A uniformly random function over ``names``, by Shannon expansion.

    Random truth tables are maximally incompressible for decision
    diagrams, so conjoining one with a transition relation is the
    worst case the fused product is designed to avoid materializing.
    """

    def build(i):
        if i == len(names):
            return manager.true() if rng.getrandbits(1) else manager.false()
        low = build(i + 1)
        high = build(i + 1)
        v = manager.var(names[i])
        return (v & high) | (~v & low)

    return build(0)


def test_fixpoints_match_explicit_oracle(capsys):
    """Gate: symbolic BFS == explicit BFS on every 10-12 bit family."""
    cases = [
        models.counter(10),
        models.lfsr(12),
        models.cellular_automaton(12, seed=1),
    ]
    for network in cases:
        oracle = explicit_reachable(network)
        system = from_network(network)
        t0 = time.perf_counter()
        result = reachable(system)
        elapsed = time.perf_counter() - t0
        codes = system.state_codes(result.states)
        # -- the acceptance gate --------------------------------------
        assert codes == oracle, network.name
        assert result.state_count == len(oracle)
        with capsys.disabled():
            print(
                f"\nreach: {network.name} {result.state_count} states in "
                f"{result.iterations} iterations ({elapsed:.3f}s, "
                f"oracle-verified)"
            )
        record_metric("reach", f"{network.name}_states", result.state_count, "count")
        record_metric("reach", f"{network.name}_iterations", result.iterations, "count")
        record_metric("reach", f"{network.name}_fixpoint_s", elapsed, "s")


def _timed_product(fused):
    """One relational product over a fresh manager; returns (seconds, count)."""
    network = models.cellular_automaton(GATE_CELLS, seed=1)
    system = from_network(network)
    states = _random_function(
        system.manager, system.current[:GATE_SET_VARS], random.Random(GATE_SEED)
    )
    quantified = system.current + system.inputs
    t0 = time.perf_counter()
    if fused:
        image = system.relation.and_exists(states, quantified)
    else:
        image = (system.relation & states).exists(quantified)
    elapsed = time.perf_counter() - t0
    return elapsed, image.sat_count()


def test_fused_product_beats_unfused(capsys):
    """Gate: fused ``and_exists`` >= 1.5x the materialized conjunction."""
    # Best of two runs per variant damps allocator/GC noise; each run
    # builds its own manager so neither variant inherits a warm table.
    t_fused, count_fused = min(_timed_product(fused=True) for _ in range(2))
    t_unfused, count_unfused = min(_timed_product(fused=False) for _ in range(2))
    assert count_fused == count_unfused
    speedup = t_unfused / t_fused
    with capsys.disabled():
        print(
            f"reach: ca{GATE_CELLS} x random {GATE_SET_VARS}-var set: "
            f"unfused {t_unfused:.3f}s, fused {t_fused:.3f}s "
            f"({speedup:.2f}x)"
        )
    record_metric("reach", "unfused_product_s", t_unfused, "s")
    record_metric("reach", "fused_product_s", t_fused, "s")
    record_metric("reach", "fused_speedup", speedup, "ratio")
    # -- the acceptance gate ------------------------------------------
    assert speedup >= SPEEDUP_GATE, (
        f"fused and_exists only {speedup:.2f}x faster than the "
        f"materialized conjunction (gate: {SPEEDUP_GATE}x)"
    )
