"""Chain variable re-ordering demo (the paper's Sec. IV-A4).

Builds the classic order-sensitive function — the equality of two bit
vectors — under a hostile order (all of ``a`` before all of ``b``), then
lets sifting find the interleaved order where the BBDD is a linear
comparator chain.

Run:  python examples/reordering_demo.py
"""

from repro import BBDDManager
from repro.core.reorder import sift, swap_adjacent


def main() -> None:
    width = 6
    names = [f"a{i}" for i in range(width)] + [f"b{i}" for i in range(width)]
    manager = BBDDManager(names)

    equal = manager.true()
    for i in range(width):
        equal = equal & manager.var(f"a{i}").xnor(manager.var(f"b{i}"))

    print("function: a == b over", width, "bit operands")
    print("initial order:", " ".join(manager.current_order()))
    print("initial size:", equal.node_count(), "nodes (exponential separation)")

    # A single adjacent swap is local and pointer-stable (Fig. 2 theory).
    root_before = equal.node
    swap_adjacent(manager, width - 1)
    print(
        "\nafter one swap: size",
        equal.node_count(),
        "| root pointer unchanged:",
        equal.node is root_before,
    )

    result = sift(manager, converge=True)
    print("\nafter sifting (Rudell's algorithm on the CVO):")
    print("order:", " ".join(manager.current_order()))
    print(
        f"size: {result.initial_size} -> {result.final_size} nodes "
        f"({result.swaps} swaps, {result.duration:.3f}s)"
    )
    print("the comparator chain is linear:", equal.node_count(), "nodes")


if __name__ == "__main__":
    main()
