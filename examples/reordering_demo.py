"""Variable re-ordering demo (the paper's Sec. IV-A4).

Builds the classic order-sensitive function — the equality of two bit
vectors — under a hostile order (all of ``a`` before all of ``b``), then
lets sifting find the interleaved order where the diagram is a linear
comparator chain.  Runs on either backend through the uniform
``manager.sift()`` protocol; the single-swap pointer-stability part is
shown on the backend's native swap primitive.

Run:  python examples/reordering_demo.py    (REPRO_BACKEND=bdd to switch)
"""

import os

import repro


def main() -> None:
    backend = os.environ.get("REPRO_BACKEND", "bbdd")
    width = 6
    names = [f"a{i}" for i in range(width)] + [f"b{i}" for i in range(width)]
    manager = repro.open(backend, vars=names)

    equal = manager.add_expr(
        " & ".join(f"(a{i} <-> b{i})" for i in range(width))
    )

    print("backend:", manager.backend)
    print("function: a == b over", width, "bit operands")
    print("initial order:", " ".join(manager.current_order()))
    print("initial size:", equal.node_count(), "nodes (exponential separation)")

    if not getattr(manager, "supports_sift", True):
        # The external-memory backend keeps canonical levelized files for
        # one fixed order; migrate to an in-memory backend to reorder.
        from repro.io import migrate_forest

        core = repro.open("bbdd", vars=names)
        moved = migrate_forest(equal, core)
        result = core.sift(converge=True)
        print(
            f"\n{manager.backend} has no dynamic reordering; migrated to "
            f"{core.backend} and sifted there: {result.initial_size} -> "
            f"{result.final_size} nodes ({result.swaps} swaps)"
        )
        print("order:", " ".join(core.current_order()))
        print("the comparator chain is linear:", moved.node_count(), "nodes")
        return

    # A single adjacent swap is local and pointer-stable (Fig. 2 theory).
    if backend == "bbdd":
        from repro.core.reorder import swap_adjacent
    else:
        from repro.bdd.reorder import swap_adjacent_bdd as swap_adjacent
    root_before = equal.node
    swap_adjacent(manager, width - 1)
    print(
        "\nafter one swap: size",
        equal.node_count(),
        "| root pointer unchanged:",
        equal.node is root_before,
    )

    result = manager.sift(converge=True)
    print("\nafter sifting (Rudell's algorithm via the uniform protocol):")
    print("order:", " ".join(manager.current_order()))
    print(
        f"size: {result.initial_size} -> {result.final_size} nodes "
        f"({result.swaps} swaps, {result.duration:.3f}s)"
    )
    print("the comparator chain is linear:", equal.node_count(), "nodes")


if __name__ == "__main__":
    main()
