"""Parallel evaluation demo: shared-memory forests, multi-core sweeps.

Builds a forest on the backend selected by REPRO_BACKEND (default
bbdd), freezes it into one ``multiprocessing.shared_memory`` segment,
and answers the same batch three ways:

1. the plain serial sweep — ``f.evaluate_batch(batch)``;
2. the one-call parallel surface — ``f.evaluate_batch(batch,
   workers=2)`` (freeze + fan-out + reassembly behind one keyword,
   sequential fallback where shared memory or the backend's freeze
   export is unavailable);
3. an explicit :class:`repro.par.ShmForest` +
   :class:`repro.par.ParallelPool`, the shape a long-lived service
   uses: freeze once, ``warm`` the workers, sweep many batches.

Run:  python examples/parallel_eval.py
"""

import os
import random
import time

import repro
from repro.par import ParallelPool, shm_available, try_freeze


def build_forest(manager):
    names = manager.var_names
    half = len(names) // 2
    parity = manager.add_expr(" ^ ".join(names))
    pairs = " | ".join(
        f"({x} & {y})" for x, y in zip(names[:half], names[half:])
    )
    return {"parity": parity, "any_pair": manager.add_expr(pairs)}


def main() -> None:
    backend = os.environ.get("REPRO_BACKEND", "bbdd")
    names = [f"x{i}" for i in range(14)]
    kwargs = {"node_budget": 512} if backend == "xmem" else {}
    manager = repro.open(backend, vars=names, **kwargs)
    forest_fns = build_forest(manager)
    f = forest_fns["parity"]

    rng = random.Random(0xC0DE)
    batch = [
        {name: rng.getrandbits(1) for name in names} for _ in range(20_000)
    ]

    t0 = time.perf_counter()
    serial = f.evaluate_batch(batch)
    print(f"serial sweep:     {len(batch)} queries in "
          f"{time.perf_counter() - t0:.3f}s")

    probe = try_freeze(manager, [f]) if shm_available() else None
    fallback = probe is None
    if probe is not None:
        probe.unlink()
        probe.close()
    t0 = time.perf_counter()
    parallel = f.evaluate_batch(batch, workers=2)
    print(f"workers=2 kwarg:  {len(batch)} queries in "
          f"{time.perf_counter() - t0:.3f}s (sequential fallback: {fallback})")
    assert parallel == serial

    frozen = try_freeze(manager, forest_fns)
    if frozen is None:
        print(f"backend {backend!r} has no freeze export here; done.")
        return
    try:
        print(f"frozen segment:   {frozen.name} ({frozen.nbytes} bytes, "
              f"{frozen.node_count} nodes, kind {frozen.kind!r})")
        with ParallelPool(workers=2) as pool:
            pool.warm(frozen)
            t0 = time.perf_counter()
            results = pool.evaluate_many(frozen, sorted(forest_fns), batch)
            dt = time.perf_counter() - t0
            counts = pool.sat_count(frozen, sorted(forest_fns))
            stats = pool.stats()
        for name in sorted(forest_fns):
            assert results[name] == forest_fns[name].evaluate_batch(batch)
        print(f"pool sweep:       {len(forest_fns)} functions x "
              f"{len(batch)} queries in {dt:.3f}s")
        print(f"model counts:     {counts}")
        print(f"pool stats:       {stats['batches']} batches, "
              f"{stats['tasks_dispatched']} tasks, "
              f"{stats['worker_restarts']} restarts")
    finally:
        frozen.unlink()
        frozen.close()


if __name__ == "__main__":
    main()
