"""Query-service demo: batched sweeps, worker pool, coalescing server.

Builds a small arithmetic forest on the backend selected by
REPRO_BACKEND (default bbdd), dumps it to a ``.bbdd`` container, and
serves it three ways:

1. direct bulk queries — ``f.evaluate_batch`` (one levelized sweep) and
   batched cube satisfiability;
2. a :class:`repro.serve.ForestPool` answering sharded, cached batches
   from the dump (the dump is the pool's wire/warm-start format, so
   any backend's forest serves from core);
3. a :class:`repro.serve.BatchingServer` coalescing concurrent single
   queries into sweeps under a latency budget.

Run:  python examples/query_service.py
"""

import asyncio
import os
import random
import tempfile
import time

import repro
from repro.serve import BatchingServer, ColumnBatch, ForestPool


def build_forest(manager):
    names = manager.var_names
    half = len(names) // 2
    xs, ys = names[:half], names[half:]
    parity = manager.false()
    for name in names:
        parity ^= manager.var(name)
    equal = manager.true()
    for x, y in zip(xs, ys):
        equal &= manager.var(x).xnor(manager.var(y))
    majority_expr = " | ".join(
        f"({x} & {y})" for x, y in zip(xs, ys)
    )
    return {"parity": parity, "equal": equal, "any_pair": manager.add_expr(majority_expr)}


def main() -> None:
    backend = os.environ.get("REPRO_BACKEND", "bbdd")
    names = [f"x{i}" for i in range(12)]
    kwargs = {"node_budget": 512} if backend == "xmem" else {}
    manager = repro.open(backend, vars=names, **kwargs)
    forest = build_forest(manager)
    rng = random.Random(0x5EED)

    # 1. direct bulk queries ------------------------------------------
    f = forest["parity"]
    queries = 5000
    columns = {name: rng.getrandbits(queries) for name in names}
    batch = ColumnBatch(columns, queries)
    t0 = time.perf_counter()
    results = f.evaluate_batch(batch)
    t_batch = time.perf_counter() - t0
    print(f"backend {backend}: parity x {queries} queries in "
          f"{t_batch * 1000:.1f} ms (one levelized sweep), "
          f"{sum(results)} true")
    cubes = [{"x0": 1, "x6": 0}, {"x0": 1, "x6": 1}, {}]
    print("equal /\\ cube satisfiable:", forest["equal"].satisfiable_batch(cubes))

    # 2. the worker pool over a dumped container ----------------------
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "forest.bbdd")
        manager.dump(forest, path)
        assignments = [
            {name: rng.getrandbits(1) for name in names} for _ in range(2000)
        ]
        with ForestPool(workers=0, shard_size=512, cache_size=2048) as pool:
            print("pool serves:", ", ".join(pool.warm(path)))
            pool.evaluate_batch(path, "any_pair", assignments)
            pool.evaluate_batch(path, "any_pair", assignments[:500])  # cache hits
            stats = pool.stats()
            print(f"pool: {stats['batches_dispatched']} dispatched batches, "
                  f"{stats['cache_hits']} cache hits, "
                  f"{stats['cache_misses']} misses")

            # 3. the coalescing asyncio front end ---------------------
            async def serve_demo():
                server = BatchingServer(
                    pool, path, batch_window=0.002, max_batch=256
                )
                answers = await asyncio.gather(
                    *(server.query("equal", a) for a in assignments[:300])
                )
                stats = server.stats()
                print(f"server: {stats['queries']} single queries -> "
                      f"{stats['batches_flushed']} sweeps "
                      f"(mean batch {stats['mean_batch']:.0f}, "
                      f"p50 {stats['p50_latency_s'] * 1000:.1f} ms)")
                return answers

            answers = asyncio.run(serve_demo())
            oracle = [forest["equal"].evaluate(a) for a in assignments[:300]]
            assert list(answers) == oracle, "service answers match the oracle"
    print("ok")


if __name__ == "__main__":
    main()
