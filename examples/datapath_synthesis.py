"""Datapath synthesis case study (the paper's Sec. V, Table II).

Synthesizes a magnitude comparator and an adder with both flows — the
conventional (commercial-substitute) flow and the BBDD front-end flow —
and prints the area/delay/gate-count comparison.

Run:  python examples/datapath_synthesis.py  (REPRO_BACKEND=bdd drives the
front end through the baseline package via the same protocol)
"""

import os

from repro.circuits import datapath
from repro.core.verilog_out import bbdd_to_verilog
from repro.network.build import build
from repro.synth.flow import baseline_flow, bbdd_flow, datapath_order
from repro.synth.library import default_library

BACKEND = os.environ.get("REPRO_BACKEND", "bbdd")


def main() -> None:
    library = default_library()
    print(f"cell library: {library.name}")
    for op in sorted(library.ops):
        cell = library.cell_for(op)
        print(f"  {cell.name:10s} area={cell.area:5.3f}um2 delay={cell.delay:4.0f}ps")

    for rtl in (datapath.magnitude_dp(16), datapath.adder(16)):
        print(f"\n=== {rtl.name} ({rtl.num_inputs} inputs) ===")
        base = baseline_flow(rtl, library)
        bb = bbdd_flow(rtl, library, backend=BACKEND)
        print(
            f"commercial flow : {base.area:7.2f} um2  {base.delay_ns:6.3f} ns  "
            f"{base.gate_count:4d} gates  (equivalent: {base.equivalent})"
        )
        print(
            f"BBDD front-end  : {bb.area:7.2f} um2  {bb.delay_ns:6.3f} ns  "
            f"{bb.gate_count:4d} gates  (equivalent: {bb.equivalent}, "
            f"{bb.bbdd_nodes} BBDD nodes)"
        )
        print(
            f"delta           : {100 * (1 - bb.area / base.area):+.1f}% area, "
            f"{100 * (1 - bb.delay_ns / base.delay_ns):+.1f}% delay "
            f"(paper average: -11.02% / -32.29%)"
        )
        print("BBDD netlist cells:", bb.netlist.histogram())

    # The package's Verilog output (what the commercial tool would consume).
    if BACKEND == "bbdd":
        small = datapath.magnitude_dp(4)
        ordered = small.copy()
        ordered.inputs = datapath_order(small.inputs)
        manager, functions = build(ordered, backend=BACKEND)
        print("\nBBDD-rewritten Verilog for a 4-bit magnitude comparator:")
        print(bbdd_to_verilog(manager, functions, module_name="magnitude4"))


if __name__ == "__main__":
    main()
