"""Persistence round trip: dump, scan, reload, migrate.

Run:  python examples/persistence_roundtrip.py
"""

import os
import tempfile

from repro import BBDDManager
from repro import io as rio


def main() -> None:
    # Build a small shared forest: a comparator slice and a majority vote.
    manager = BBDDManager(["a", "b", "c", "d"])
    a, b, c, d = manager.variables()
    equal = a.xnor(b) & c.xnor(d)
    majority = (a & b) | (a & c) | (b & c)

    path = os.path.join(tempfile.mkdtemp(), "forest.bbdd")
    manager.dump({"equal": equal, "majority": majority}, path)
    print(f"dumped to {path} ({os.path.getsize(path)} bytes)")

    # The header alone tells you what is inside — no node decoding.
    info = rio.scan(path)
    print("scan:", info.summary())

    # Reload into a fresh manager (same variables, same order): the
    # canonical forest comes back node for node.
    fresh, funcs = rio.load(path)
    print("fresh reload:", {n: f.node_count() for n, f in funcs.items()})
    order = ["a", "b", "c", "d"]
    assert funcs["equal"].truth_mask(order) == equal.truth_mask(order)

    # Reload under a *different* variable order, into a manager that also
    # holds unrelated variables: records are re-reduced on the fly.
    other = BBDDManager(["d", "spare", "c", "b", "a"])
    moved = other.load(path)
    assert moved["majority"].truth_mask(order) == majority.truth_mask(order)
    print("permuted+superset reload ok:", other.current_order())

    # Live migration (no file in between), with variable renaming.
    target = BBDDManager(["p", "q", "r", "s"])
    renamed = rio.migrate(
        {"equal": equal}, target, rename={"a": "p", "b": "q", "c": "r", "d": "s"}
    )
    print("migrated under rename:", renamed["equal"])

    # JSON interchange for debugging — print it, diff it, grep it.
    doc = rio.to_dict(manager, {"equal": equal})
    print("json nodes:", doc["nodes"])


if __name__ == "__main__":
    main()
