"""Persistence round trip: dump, scan, reload, migrate — on any backend.

Both backends share the levelized binary container (BBDD couple records
vs. BDD Shannon records, told apart by a header flag), and migration
works across backends through the repro.api protocol.

Run:  python examples/persistence_roundtrip.py  (REPRO_BACKEND=bdd to switch)
"""

import os
import tempfile

import repro
from repro import io as rio


def main() -> None:
    backend = os.environ.get("REPRO_BACKEND", "bbdd")
    # The BBDD and xmem backends share the couple-record container; only
    # the baseline BDD package writes Shannon records (header flag).
    loader = rio.load_bdd if backend == "bdd" else rio.load

    # Build a small shared forest: a comparator slice and a majority vote.
    manager = repro.open(backend, vars=["a", "b", "c", "d"])
    equal = manager.add_expr("(a <-> b) & (c <-> d)")
    majority = manager.add_expr("(a & b) | (a & c) | (b & c)")

    suffix = ".bdd" if backend == "bdd" else ".bbdd"
    path = os.path.join(tempfile.mkdtemp(), "forest" + suffix)
    manager.dump({"equal": equal, "majority": majority}, path)
    print(f"[{backend}] dumped to {path} ({os.path.getsize(path)} bytes)")

    # The header alone tells you what is inside — no node decoding.
    info = rio.scan(path)
    print("scan:", info.summary())

    # Reload into a fresh manager (same variables, same order): the
    # canonical forest comes back node for node.
    fresh, funcs = loader(path)
    print("fresh reload:", {n: f.node_count() for n, f in funcs.items()})
    order = ["a", "b", "c", "d"]
    assert funcs["equal"].truth_mask(order) == equal.truth_mask(order)

    # Reload under a *different* variable order, into a manager that also
    # holds unrelated variables: records are re-reduced on the fly.
    other = repro.open(backend, vars=["d", "spare", "c", "b", "a"])
    moved = other.load(path)
    assert moved["majority"].truth_mask(order) == majority.truth_mask(order)
    print("permuted+superset reload ok:", other.current_order())

    # Live migration (no file in between), with variable renaming.
    target = repro.open(backend, vars=["p", "q", "r", "s"])
    renamed = rio.migrate_forest(
        {"equal": equal}, target, rename={"a": "p", "b": "q", "c": "r", "d": "s"}
    )
    print("migrated under rename:", renamed["equal"])

    # Migration also crosses backends (re-canonicalized via the protocol).
    cross = repro.open("bdd" if backend == "bbdd" else "bbdd", vars=order)
    crossed = rio.migrate_forest({"equal": equal}, cross)
    assert crossed["equal"].truth_mask(order) == equal.truth_mask(order)
    print(f"cross-backend migration -> {cross.backend} ok")

    # JSON interchange for debugging — print it, diff it, grep it.
    if backend == "bbdd":
        doc = rio.to_dict(manager, {"equal": equal})
        print("json nodes:", doc["nodes"])


if __name__ == "__main__":
    main()
