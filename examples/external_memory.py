"""External-memory backend demo: beyond-RAM forests under a node budget.

Builds a forest whose total node count is several times the manager's
``node_budget``: completed functions spill to disk as levelized node
files and reload transparently, so peak resident records stay bounded
while every query still answers.  (This script always drives the xmem
backend; the in-core oracle cross-check uses whatever REPRO_BACKEND
selects, default bbdd.)

Run:  python examples/external_memory.py
"""

import os
import random

import repro


def build_forest(manager, chunks=8, width=24):
    names = [manager.var_name(i) for i in range(width)]
    rng = random.Random(7)
    forest = []
    for k in range(chunks):
        f = manager.true()
        for i in range(0, width, 2):
            u, v = names[(i + k) % width], names[(i + k + 1) % width]
            couple = manager.var(u).xnor(manager.var(v))
            f = f & couple if rng.random() < 0.5 else f ^ couple
        forest.append(f)
    return forest


def main() -> None:
    width = 24
    budget = 60
    names = [f"x{i}" for i in range(width)]
    manager = repro.open(
        "xmem", vars=names, node_budget=budget, request_chunk=16
    )
    forest = build_forest(manager, width=width)

    stats = manager.stats()
    print("node budget:        ", stats["node_budget"], "records")
    print("live forest nodes:  ", stats["live_nodes"])
    print("resident right now: ", stats["resident_nodes"])
    print("peak resident:      ", stats["peak_resident"])
    print("level blocks spilled:", stats["spill_writes"])
    print("request runs spilled:", stats["request_runs_spilled"])

    # Spilled representations still answer everything — and agree with
    # the in-core oracle bit for bit.
    oracle_backend = os.environ.get("REPRO_BACKEND", "bbdd")
    if oracle_backend == "xmem":
        oracle_backend = "bbdd"
    oracle = repro.open(oracle_backend, vars=names)
    oracle_forest = build_forest(oracle, width=width)
    rng = random.Random(99)
    agree = 0
    for _ in range(64):
        assignment = {n: bool(rng.getrandbits(1)) for n in names}
        for f, g in zip(forest, oracle_forest):
            assert f.evaluate(assignment) == g.evaluate(assignment)
            agree += 1
    print(f"agrees with the {oracle.backend} oracle on {agree} samples")
    sizes = [f.node_count() for f in forest]
    print("per-function nodes: ", sizes, "->", sum(sizes), "total")


if __name__ == "__main__":
    main()
