"""Quickstart: the unified repro.open front end.

Run:  python examples/quickstart.py        (REPRO_BACKEND=bdd to switch)
"""

import os

import repro


def main() -> None:
    # repro.open returns a manager for any registered backend — "bbdd"
    # (the paper's package) or "bdd" (the CUDD comparator substitute) —
    # with one identical API behind it.
    backend = os.environ.get("REPRO_BACKEND", "bbdd")
    manager = repro.open(backend, vars=["a", "b", "c", "d"])
    a, b, c, d = manager.variables()

    # Build via operators or via the expression language.
    f = (a ^ b) | (c & d)
    assert f == manager.add_expr("(a ^ b) | (c & d)")
    g = a.xnor(b)  # the biconditional: one BBDD node, a chain of BDD nodes

    print("backend:", manager.backend)
    print("f:", f)
    print("g = a XNOR b uses", g.node_count(), "node(s)")

    # Canonicity: equivalent expressions share the same root pointer.
    h = (d & c) | (b ^ a)
    print("f == (d&c)|(b^a):", f == h, "(pointer comparison!)")

    # Semantics: evaluation, counting, witnesses, cofactors, quantifiers.
    print("f(a=1, b=0, c=0, d=0) =", f(a=1, b=0, c=0, d=0))
    print("satisfying assignments of f:", f.sat_count(), "of 16")
    print("one witness:", f.sat_one())
    print("support of f:", sorted(f.support()))
    print("f with a := 1:", f.restrict("a", True).to_expr())
    print("exists c, d . f:", manager.add_expr("\\E c, d: (a ^ b) | (c & d)").to_expr())

    # let: simultaneous substitution (rename / restrict / compose).
    print("f[a := c & d]:", f.let({"a": c & d}).to_expr())

    # XOR-richness: parity is where BBDDs shine (Table I's parity row).
    wide = repro.open(backend, vars=16)
    parity = wide.add_expr(" ^ ".join(f"x{i}" for i in range(16)))
    print(f"16-variable parity under {backend}:", parity.node_count(), "nodes")

    # BBDD-specific introspection stays available on its manager.
    if manager.backend == "bbdd":
        from repro.core.dot import to_dot

        print("CVO couples:", manager.cvo_couples())
        print("\nDOT export of g:")
        print(to_dot(manager, [g], names=["g"]))


if __name__ == "__main__":
    main()
