"""Quickstart: building and manipulating BBDDs.

Run:  python examples/quickstart.py
"""

from repro import BBDDManager
from repro.core.dot import to_dot


def main() -> None:
    # A manager owns the variables, the unique/computed tables and the
    # chain variable order (CVO).
    manager = BBDDManager(["a", "b", "c", "d"])
    a, b, c, d = manager.variables()

    # Boolean operators build reduced, ordered BBDDs via Algorithm 1.
    f = (a ^ b) | (c & d)
    g = a.xnor(b)  # one biconditional node: the BBDD primitive

    print("f:", f)
    print("g = a XNOR b uses", g.node_count(), "node (the comparator shape)")
    print("CVO couples:", manager.cvo_couples())

    # Canonicity: equivalent expressions share the same root pointer.
    h = (d & c) | (b ^ a)
    print("f == (d&c)|(b^a):", f == h, "(pointer comparison!)")

    # Semantics: evaluation, counting, cofactors, quantification.
    print("f(a=1, b=0, c=0, d=0) =", f(a=1, b=0, c=0, d=0))
    print("satisfying assignments of f:", f.sat_count(), "of 16")
    print("one witness:", f.sat_one())
    print("support of f:", sorted(f.support()))
    print("f with a := 1:", f.restrict("a", True))
    print("exists c, d . f:", f.exists(["c", "d"]))

    # XOR-richness: parity is where BBDDs shine (Table I's parity row).
    wide = BBDDManager(16)
    parity = wide.variables()[0]
    for v in wide.variables()[1:]:
        parity = parity ^ v
    print("16-variable parity BBDD:", parity.node_count(), "nodes")

    # Export: Graphviz for inspection, Verilog as the package's output
    # format (Sec. IV-B of the paper).
    print("\nDOT export of g:")
    print(to_dot(manager, [g], names=["g"]))


if __name__ == "__main__":
    main()
