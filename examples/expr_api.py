"""The unified expression API: parse, quantify, substitute, switch backends.

Run:  python examples/expr_api.py           (REPRO_BACKEND=bdd to switch)
"""

import os

import repro


def main() -> None:
    backend = os.environ.get("REPRO_BACKEND", "bbdd")
    manager = repro.open(backend, vars=["a", "b", "c", "d"])
    print(f"backend: {manager.backend}  (registered: {', '.join(repro.backends())})")

    # Parse the whole grammar: & | ^ ~ -> <-> ite(f,g,h) TRUE FALSE.
    f = manager.add_expr("(a ^ b) | (c & d)")
    g = manager.add_expr("a -> b <-> ~a | b")  # a tautology
    print("f =", f.to_expr(), "| sat_count:", f.sat_count())
    print("implication/iff tautology:", g.is_true)

    # Quantifiers scope to the end of the expression.
    h = manager.add_expr("\\E c, d: (a ^ b) | (c & d)")
    print("\\E c, d: f =", h.to_expr())
    print("\\A a: a | b =", manager.add_expr("\\A a: a | b").to_expr())

    # let: simultaneous substitution — rename, restrict, compose at once.
    swapped = f.let({"a": "b", "b": "a"})  # rename (swap, simultaneously)
    print("f with a<->b swapped:", swapped == f, "(symmetric in a, b)")
    print("f with d := 1:", f.let({"d": True}).to_expr())
    print("f with c := a ^ d:", f.let({"c": manager.add_expr("a ^ d")}).to_expr())

    # Canonicity makes the round trip a pointer comparison.
    assert manager.add_expr(f.to_expr()) == f
    print("add_expr(f.to_expr()) == f: True (pointer comparison)")

    # The identical program runs on the other backend.
    other = repro.open("bdd" if backend == "bbdd" else "bbdd", vars=["a", "b", "c", "d"])
    f2 = other.add_expr("(a ^ b) | (c & d)")
    print(
        f"same expression on {other.backend}: sat_count {f2.sat_count()}, "
        f"{f.node_count()} vs {f2.node_count()} nodes"
    )

    # ...and forests migrate across backends, re-canonicalized on the fly.
    from repro.io import migrate_forest

    moved = migrate_forest(f, other)
    print("migrated across backends, still equal:", moved == f2)


if __name__ == "__main__":
    main()
