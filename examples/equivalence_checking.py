"""Combinational equivalence checking with decision-diagram canonicity.

Two structurally different adder implementations (ripple-carry vs. a
carry-select-style rewrite) are read as networks, built into one shared
manager through the backend-agnostic repro.api protocol, and compared
output by output — equivalence is a pointer comparison thanks to the
strong canonical form, on either backend.

Run:  python examples/equivalence_checking.py   (REPRO_BACKEND=bdd to switch)
"""

import os

from repro.circuits import arith
from repro.network.build import build
from repro.network.network import LogicNetwork

BACKEND = os.environ.get("REPRO_BACKEND", "bbdd")


def ripple_adder(width: int) -> LogicNetwork:
    net = LogicNetwork("ripple")
    a = net.add_inputs([f"a{i}" for i in range(width)])
    b = net.add_inputs([f"b{i}" for i in range(width)])
    sums, cout = arith.ripple_adder(net, a, b)
    for i, s in enumerate(sums):
        net.set_output(f"s{i}", s)
    net.set_output("cout", cout)
    return net


def carry_select_adder(width: int) -> LogicNetwork:
    """Upper half computed for both carry values, then selected."""
    net = LogicNetwork("carry_select")
    a = net.add_inputs([f"a{i}" for i in range(width)])
    b = net.add_inputs([f"b{i}" for i in range(width)])
    half = width // 2
    lo_sums, lo_carry = arith.ripple_adder(net, a[:half], b[:half])
    hi0, c0 = arith.ripple_adder(net, a[half:], b[half:])
    one = net.const(True)
    hi1, c1 = arith.ripple_adder(net, a[half:], b[half:], one)
    for i, s in enumerate(lo_sums):
        net.set_output(f"s{i}", s)
    for i in range(width - half):
        net.set_output(f"s{half + i}", net.mux(lo_carry, hi1[i], hi0[i]))
    net.set_output("cout", net.mux(lo_carry, c1, c0))
    return net


def buggy_adder(width: int) -> LogicNetwork:
    """Ripple adder with a deliberately wrong carry in one slice."""
    net = LogicNetwork("buggy")
    a = net.add_inputs([f"a{i}" for i in range(width)])
    b = net.add_inputs([f"b{i}" for i in range(width)])
    sums = []
    carry = None
    for i in range(width):
        if carry is None:
            s, carry = arith.half_adder(net, a[i], b[i])
        else:
            s, carry = arith.full_adder(net, a[i], b[i], carry)
            if i == width // 2:
                carry = net.or_(a[i], b[i])  # bug: should be majority
        sums.append(s)
    for i, s in enumerate(sums):
        net.set_output(f"s{i}", s)
    net.set_output("cout", carry)
    return net


def check(golden: LogicNetwork, candidate: LogicNetwork) -> None:
    manager, golden_fns = build(golden, backend=BACKEND)
    _, candidate_fns = build(candidate, manager=manager)
    mismatches = []
    for name, f in golden_fns.items():
        if not f.equivalent(candidate_fns[name]):
            diff = f ^ candidate_fns[name]
            witness = diff.sat_one()
            mismatches.append((name, witness))
    verdict = "EQUIVALENT" if not mismatches else "NOT equivalent"
    print(f"{golden.name} vs {candidate.name}: {verdict}")
    for name, witness in mismatches[:3]:
        print(f"  output {name} differs, e.g. at {witness}")


def main() -> None:
    width = 8
    check(ripple_adder(width), carry_select_adder(width))
    check(ripple_adder(width), buggy_adder(width))


if __name__ == "__main__":
    main()
